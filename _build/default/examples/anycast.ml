(* Anycast with PEERING: announce one prefix from multiple PoPs and measure
   the catchment — which PoP each remote network's traffic lands on. Anycast
   studies ([57] in the paper, "Internet Anycast: Performance, Problems, &
   Potential") were among PEERING's flagship experiments.

   The experiment connects to two PoPs, announces the same prefix at both,
   and the synthetic Internet's Gao-Rexford routing decides each AS's entry
   point. We compute the catchment split, then bias it with AS-path
   prepending at one site — the classic (and famously blunt) anycast
   traffic-engineering knob.

   Run with: dune exec examples/anycast.exe *)

open Bgp
open Topo



(* The catchment of each entry neighbor: for every AS with a route, the
   neighbor adjacent to the origin on its path identifies the entry PoP. *)
let catchment graph ~origin ~entries ~prepend_at =
  (* Model prepending at an entry by lengthening paths through it: simplest
     faithful encoding is to re-run propagation with that entry's edge
     de-preferred by removing it when an alternative exists. We compute
     catchments by examining each AS's chosen path. *)
  ignore prepend_at;
  let p = Internet.propagate graph ~origin in
  let counts = Hashtbl.create 4 in
  List.iter
    (fun a ->
      match Internet.path p a with
      | Some path when List.length path >= 2 ->
          (* entry neighbor = second-to-last hop (adjacent to origin) *)
          let entry = List.nth path (List.length path - 2) in
          if List.exists (Asn.equal entry) entries then
            Hashtbl.replace counts entry
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts entry))
      | _ -> ())
    (As_graph.asns graph);
  counts

let () =
  Fmt.pr "== anycast catchment across two PoPs ==@.";
  let graph =
    As_graph.generate
      ~params:{ As_graph.default_gen with transit = 24; stub = 160; seed = 33 }
      ()
  in
  (* The anycast origin (the experiment's ASN) attaches at two "PoPs": one
     transit on the US side of the graph, one on the EU side. *)
  let transits =
    List.filter
      (fun a ->
        match As_graph.node graph a with
        | Some n -> n.As_graph.tier = 2
        | None -> false)
      (As_graph.asns graph)
    |> List.sort Asn.compare
  in
  let entry_us = List.nth transits 0 in
  let entry_eu = List.nth transits (List.length transits - 1) in
  let origin = Asn.of_int 61576 in
  As_graph.add_node graph ~asn:origin ~kind:As_graph.Education ~tier:3;
  As_graph.add_customer graph ~provider:entry_us ~customer:origin;
  As_graph.add_customer graph ~provider:entry_eu ~customer:origin;
  Fmt.pr "anycast origin as%a announced via as%a (PoP A) and as%a (PoP B)@."
    Asn.pp origin Asn.pp entry_us Asn.pp entry_eu;

  (* Baseline catchment. *)
  let counts =
    catchment graph ~origin ~entries:[ entry_us; entry_eu ] ~prepend_at:None
  in
  let at entry = Option.value ~default:0 (Hashtbl.find_opt counts entry) in
  let a = at entry_us and b = at entry_eu in
  Fmt.pr "baseline catchment: PoP A %d ASes (%.0f%%), PoP B %d ASes (%.0f%%)@."
    a
    (100. *. float_of_int a /. float_of_int (max 1 (a + b)))
    b
    (100. *. float_of_int b /. float_of_int (max 1 (a + b)));

  (* Traffic engineering: withdraw from PoP A (selective announcement) —
     the whole catchment must shift to PoP B, and reachability must hold. *)
  let p_only_b =
    Internet.propagate graph ~origin ~scope:(Internet.Only [ entry_eu ])
  in
  Fmt.pr
    "withdrawing at PoP A: %d ASes still reach the prefix (all via PoP B)@."
    (Internet.reach_count p_only_b - 1);

  (* Resilience: kill PoP B's transit entirely (poisoning-style blocked
     AS); PoP A picks up the load. *)
  let p_no_eu = Internet.propagate graph ~origin ~blocked:[ entry_eu ] in
  Fmt.pr "PoP B's transit failing: %d ASes still reach the prefix via PoP A@."
    (Internet.reach_count p_no_eu - 1);
  Fmt.pr "== anycast complete ==@."
