(* Automated filter troubleshooting (the paper's Appendix A, proposed there
   as future work): a PEERING announcement is not globally visible because
   some remote network silently filters it. Operators only have looking
   glasses — and even adjacent looking glasses cannot distinguish "A does
   not export to B" from "B filters A" — so the paper's team debugged by
   e-mailing providers. This example runs the automated localizer instead.

   Run with: dune exec examples/filter_debugging.exe *)

open Bgp
open Topo

let () =
  Fmt.pr "== automated route-filter troubleshooting (Appendix A) ==@.";
  let graph =
    As_graph.generate
      ~params:{ As_graph.default_gen with transit = 16; stub = 100; seed = 41 }
      ()
  in
  (* PEERING's AS attaches below two transits. *)
  let transits =
    List.filter
      (fun a ->
        match As_graph.node graph a with
        | Some n -> n.As_graph.tier = 2
        | None -> false)
      (As_graph.asns graph)
    |> List.sort Asn.compare
  in
  let t1 = List.nth transits 0 and t2 = List.nth transits 1 in
  let origin = Asn.of_int 47065 in
  As_graph.add_node graph ~asn:origin ~kind:As_graph.Education ~tier:3;
  As_graph.add_customer graph ~provider:t1 ~customer:origin;
  As_graph.add_customer graph ~provider:t2 ~customer:origin;

  (* The hidden problem: a single-homed stub's provider filters the route
     toward its customer (a stale customer-facing prefix list — exactly the
     Appendix A scenario: the network exists, peers fine, but never sees
     our prefix). *)
  let victim =
    List.find
      (fun a ->
        match As_graph.node graph a with
        | Some n ->
            n.As_graph.tier = 3
            && List.length (As_graph.providers graph a) = 1
            && As_graph.peers graph a = []
            && not (Asn.equal a origin)
        | None -> false)
      (List.sort Asn.compare (As_graph.asns graph))
  in
  let bad_provider = List.hd (As_graph.providers graph victim) in
  let filters = [ (bad_provider, victim) ] in
  Fmt.pr
    "hidden fault injected: as%a's provider as%a silently filters the prefix toward it@."
    Asn.pp victim Asn.pp bad_provider;

  (* Visible symptom: fewer networks see the announcement than should. *)
  let ideal = Internet.propagate graph ~origin in
  let actual = Internet.propagate graph ~origin ~filters in
  Fmt.pr
    "expected reach %d ASes; observed reach %d ASes — %d network(s) cannot see the prefix@."
    (Internet.reach_count ideal)
    (Internet.reach_count actual)
    (Internet.reach_count ideal - Internet.reach_count actual);

  (* Deploy looking glasses in ~35%% of networks and localize. *)
  (* Find a deployment seed under which the victim hosts a looking glass
     (in practice: the operator of the unreachable network runs the query
     themselves). *)
  let rec deploy seed =
    let lg = Looking_glass.create ~coverage:0.35 ~seed ~filters graph ~origin in
    if List.exists (Asn.equal victim) (Looking_glass.hosts lg) then lg
    else deploy (seed + 1)
  in
  let lg = deploy 8 in
  Fmt.pr "looking glasses available in %d/%d networks@."
    (Looking_glass.host_count lg)
    (As_graph.node_count graph);
  let suspects = Looking_glass.localize lg ~origin in
  Fmt.pr "localizer produced %d candidate filter edges:@."
    (List.length suspects);
  List.iteri
    (fun i s -> if i < 5 then Fmt.pr "  %d. %a@." (i + 1) Looking_glass.pp_suspect s)
    suspects;
  Fmt.pr "true fault covered by candidates: %b@."
    (Looking_glass.covers suspects ~filters);
  (match suspects with
  | top :: _
    when Asn.equal top.Looking_glass.from_as bad_provider
         && Asn.equal top.Looking_glass.to_as victim ->
      Fmt.pr "top-ranked suspect IS the injected fault — email one provider \
              instead of all of them@."
  | _ ->
      Fmt.pr "fault is in the candidate set; a few more looking glasses \
              would pinpoint it@.");
  Fmt.pr "== filter troubleshooting complete ==@."
