examples/security_audit.ml: Approval Asn Aspath Attr Bgp Community Fmt Ipv4 Ipv4_packet List Msg Neighbor_host Netcore Option Peering Platform Pop Prefix Result Rib Toolkit Vbgp
