examples/anycast.ml: As_graph Asn Bgp Fmt Hashtbl Internet List Option Topo
