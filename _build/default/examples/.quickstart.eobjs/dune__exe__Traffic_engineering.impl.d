examples/traffic_engineering.ml: Approval Asn Aspath Attr Bgp Fmt Ipv4_packet List Neighbor_host Netcore Peering Platform Pop Prefix Printf Rib Toolkit Vbgp
