examples/hijack_defense.ml: As_graph Asn Aspath Bgp Fmt Internet List Netcore Policy Prefix Topo
