examples/backbone_routing.ml: Approval Asn Aspath Bgp Fmt Ipv4 Ipv4_packet List Neighbor_host Netcore Peering Platform Pop Prefix Rib Toolkit Vbgp
