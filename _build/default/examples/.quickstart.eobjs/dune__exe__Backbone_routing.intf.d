examples/backbone_routing.mli:
