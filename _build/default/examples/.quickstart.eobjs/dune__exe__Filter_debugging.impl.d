examples/filter_debugging.ml: As_graph Asn Bgp Fmt Internet List Looking_glass Topo
