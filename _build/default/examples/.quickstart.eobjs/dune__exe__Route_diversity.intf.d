examples/route_diversity.mli:
