examples/anycast.mli:
