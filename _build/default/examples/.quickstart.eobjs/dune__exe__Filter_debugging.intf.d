examples/filter_debugging.mli:
