examples/route_diversity.ml: Asn Bgp Fmt Hashtbl List Netcore Prefix Topo
