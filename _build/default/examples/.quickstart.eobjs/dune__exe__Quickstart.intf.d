examples/quickstart.mli:
