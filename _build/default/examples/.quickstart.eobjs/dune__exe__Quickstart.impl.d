examples/quickstart.ml: Approval Asn Aspath Attr Bgp Fmt Ipv4 Ipv4_packet List Mac Neighbor_host Netcore Peering Platform Pop Prefix Printf Toolkit Topo Vbgp
