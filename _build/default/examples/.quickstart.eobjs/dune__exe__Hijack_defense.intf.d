examples/hijack_defense.mli:
