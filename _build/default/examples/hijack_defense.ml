(* Detecting and neutralizing a BGP prefix hijack — the ARTEMIS experiment
   class the paper highlights ([83], §7.1 "in-the-wild demonstrations"):
   PEERING let researchers launch controlled hijacks of their own prefixes
   and evaluate mitigation from a real vantage point.

   Here the victim (a PEERING experiment) originates a /23; an attacker AS
   announces the same prefix. We measure how much of the Internet the
   attacker attracts (the "pollution"), then apply the standard ARTEMIS
   mitigation — announcing the two covering /24 more-specifics — and
   measure pollution again. Longest-prefix match makes the more-specifics
   win wherever they propagate.

   Run with: dune exec examples/hijack_defense.exe *)

open Netcore
open Bgp
open Topo

(* For each AS, decide which origin's announcement wins. Same prefix: the
   Gao-Rexford class then hop count decides; the attacker also wins ties
   (conservative for the victim). Different prefix lengths: longest match
   wins outright. *)
let pollution graph ~victim ~attacker =
  let pv = Internet.propagate graph ~origin:victim in
  let pa = Internet.propagate graph ~origin:attacker in
  let polluted = ref 0 and total = ref 0 in
  List.iter
    (fun a ->
      if not (Asn.equal a victim || Asn.equal a attacker) then begin
        incr total;
        match (Internet.route pv a, Internet.route pa a) with
        | _, None -> ()
        | None, Some _ -> incr polluted
        | Some rv, Some ra ->
            if
              Policy.prefer
                (ra.Internet.cls, ra.Internet.hops)
                (rv.Internet.cls, rv.Internet.hops)
              <= 0
            then incr polluted
      end)
    (As_graph.asns graph);
  (!polluted, !total)

let () =
  Fmt.pr "== hijack detection and mitigation (ARTEMIS-style, §7.1) ==@.";
  let graph =
    As_graph.generate
      ~params:{ As_graph.default_gen with transit = 24; stub = 180; seed = 77 }
      ()
  in
  let tier2 =
    List.filter
      (fun a ->
        match As_graph.node graph a with
        | Some n -> n.As_graph.tier = 2
        | None -> false)
      (As_graph.asns graph)
    |> List.sort Asn.compare
  in
  (* Victim: a PEERING experiment multihomed through two transits.
     Attacker: a stub on the far side of the hierarchy. *)
  let victim = Asn.of_int 61574 in
  As_graph.add_node graph ~asn:victim ~kind:As_graph.Education ~tier:3;
  As_graph.add_customer graph ~provider:(List.nth tier2 0) ~customer:victim;
  As_graph.add_customer graph ~provider:(List.nth tier2 1) ~customer:victim;
  let attacker = Asn.of_int 66666 in
  As_graph.add_node graph ~asn:attacker ~kind:As_graph.Unclassified ~tier:3;
  As_graph.add_customer graph
    ~provider:(List.nth tier2 (List.length tier2 - 1))
    ~customer:attacker;
  let prefix = Prefix.of_string_exn "184.164.224.0/23" in
  Fmt.pr "victim as%a originates %a; attacker as%a announces the same /23@."
    Asn.pp victim Prefix.pp prefix Asn.pp attacker;

  (* Phase 1: the hijack succeeds partially — BGP favours proximity. *)
  let polluted, total = pollution graph ~victim ~attacker in
  Fmt.pr "during the hijack: %d/%d ASes (%.0f%%) route to the attacker@."
    polluted total
    (100. *. float_of_int polluted /. float_of_int total);

  (* Phase 2: detection. The victim's PEERING vantage sees the attacker's
     announcement arrive from its own neighbors (a route for its prefix
     with a foreign origin) — ARTEMIS's detection signal. *)
  let pa = Internet.propagate graph ~origin:attacker in
  let vantage = List.nth tier2 0 in
  (match Internet.path pa vantage with
  | Some path ->
      Fmt.pr
        "detection: the PEERING session with as%a shows %a originated by \
         as%a (not us) — hijack alarm in one update@."
        Asn.pp vantage Prefix.pp prefix
        Fmt.(option ~none:(any "?") Asn.pp)
        (Aspath.origin (Aspath.of_asns path))
  | None -> Fmt.pr "detection vantage has no attacker route (lucky)@.");

  (* Phase 3: mitigation — announce the covering more-specifics. Longest
     prefix match beats the attacker everywhere the /24s propagate (and
     they propagate exactly like the victim's /23 did). *)
  let sub1, sub2 = Prefix.split prefix in
  let pv = Internet.propagate graph ~origin:victim in
  let reclaimed =
    List.length
      (List.filter
         (fun a ->
           (not (Asn.equal a victim))
           && (not (Asn.equal a attacker))
           && Internet.has_route pv a)
         (As_graph.asns graph))
  in
  let still_polluted = total - reclaimed in
  Fmt.pr
    "mitigation: announcing %a and %a — more-specifics reclaim every AS \
     that hears them: pollution drops to %d/%d (%.0f%%)@."
    Prefix.pp sub1 Prefix.pp sub2 still_polluted total
    (100. *. float_of_int still_polluted /. float_of_int total);
  Fmt.pr
    "(ARTEMIS reports neutralization within a minute; the limit here is \
     only propagation delay)@.";
  Fmt.pr "== hijack defense complete ==@."
