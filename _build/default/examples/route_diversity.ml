(* Measuring hidden routes (paper §7.1): BGP only reveals routes that are in
   use, hiding backup paths and route diversity. PEERING experiments
   uncover them by manipulating availability — AS-path poisoning makes an
   AS's preferred route unusable, forcing it onto (and thus revealing) its
   backup.

   This example announces an experiment prefix over a synthetic Internet,
   then poisons the ASes on the default paths one at a time, counting how
   many distinct AS-level routes each network is observed to use — routes
   invisible to passive measurement.

   Run with: dune exec examples/route_diversity.exe *)

open Netcore
open Bgp


(* The AS paths in use across the whole Internet for a given announcement
   configuration. *)
let paths_in_use internet ~origin ~blocked =
  let graph = Topo.Internet.graph internet in
  let p = Topo.Internet.propagate graph ~origin ~blocked in
  List.filter_map
    (fun asn -> Topo.Internet.path p asn)
    (Topo.As_graph.asns graph)

let () =
  Fmt.pr "== route diversity via poisoning (paper §7.1) ==@.";
  let graph =
    Topo.As_graph.generate
      ~params:
        { Topo.As_graph.default_gen with transit = 20; stub = 120; seed = 21 }
      ()
  in
  (* The experiment's AS attaches to the graph through two transit
     providers, like a PEERING university + IXP footprint. *)
  let exp_asn = Asn.of_int 61574 in
  let transits =
    List.filter
      (fun a ->
        match Topo.As_graph.node graph a with
        | Some n -> n.Topo.As_graph.tier = 2
        | None -> false)
      (Topo.As_graph.asns graph)
    |> List.sort Asn.compare
  in
  let t1 = List.nth transits 0 and t2 = List.nth transits 1 in
  Topo.As_graph.add_node graph ~asn:exp_asn ~kind:Topo.As_graph.Education
    ~tier:3;
  Topo.As_graph.add_customer graph ~provider:t1 ~customer:exp_asn;
  Topo.As_graph.add_customer graph ~provider:t2 ~customer:exp_asn;
  let internet =
    Topo.Internet.create graph
      ~origins:[ (Prefix.of_string_exn "184.164.224.0/24", exp_asn) ]
  in

  (* Baseline: the paths in use with a plain announcement. *)
  let baseline = paths_in_use internet ~origin:exp_asn ~blocked:[] in
  let distinct paths =
    List.sort_uniq compare paths |> List.length
  in
  Fmt.pr "plain announcement: %d ASes reached, %d distinct AS paths in use@."
    (List.length baseline) (distinct baseline);

  (* Poison each first-hop transit in turn: ASes that preferred it are
     forced onto backup routes, revealing paths passive measurement never
     sees. *)
  let seen = Hashtbl.create 1024 in
  let record paths = List.iter (fun p -> Hashtbl.replace seen p ()) paths in
  record baseline;
  let after_baseline = Hashtbl.length seen in
  List.iter
    (fun victim ->
      let revealed = paths_in_use internet ~origin:exp_asn ~blocked:[ victim ] in
      record revealed;
      Fmt.pr "poisoning as%s: %d ASes still reach us, cumulative distinct \
              paths %d@."
        (Asn.to_string victim) (List.length revealed) (Hashtbl.length seen))
    [ t1; t2 ];
  Fmt.pr
    "poisoning uncovered %d additional AS paths (%d -> %d) — routes \
     invisible without PEERING-style control@."
    (Hashtbl.length seen - after_baseline)
    after_baseline (Hashtbl.length seen);

  (* Availability check: with one transit poisoned, is the experiment still
     globally reachable (LIFEGUARD-style rerouting)? *)
  let reach_without_t1 =
    List.length (paths_in_use internet ~origin:exp_asn ~blocked:[ t1 ])
  in
  let total = Topo.As_graph.node_count graph in
  Fmt.pr "with as%s avoided, %d/%d ASes still reach the prefix@."
    (Asn.to_string t1) reach_without_t1 total;
  Fmt.pr "== route diversity complete ==@."
