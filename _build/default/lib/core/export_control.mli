(** vBGP's community-based export control (paper §3.2.1).

    Experiments tag announcements with whitelist/blacklist communities
    naming neighbors; the router propagates each announcement only to the
    neighbors the tags allow. Neighbors are named by their platform-global
    export id (their index in the shared global address pool, §4.4), so a
    tag written at one PoP means the same neighbor everywhere. *)

open Bgp

val marker_experiment : int
val whitelist_base : int
val blacklist_base : int
val max_export_id : int

val announce_to : ctl_asn:int -> int -> Community.t
(** Whitelist tag: announce only to this neighbor (repeatable). *)

val block : ctl_asn:int -> int -> Community.t
(** Blacklist tag: never announce to this neighbor. *)

val experiment_marker : ctl_asn:int -> Community.t
(** Internal backbone-mesh marker for experiment-originated routes. *)

val is_marker : ctl_asn:int -> Community.t -> bool

val whitelisted : ctl_asn:int -> Community.t list -> int list
val blacklisted : ctl_asn:int -> Community.t list -> int list

val allows : ctl_asn:int -> export_id:int -> Community.t list -> bool
(** No tags = announce everywhere; a whitelist restricts to its members; a
    blacklist always excludes (and beats the whitelist). *)
