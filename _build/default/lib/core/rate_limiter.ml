(* Keyed fixed-window rate limiting. PEERING limits each experiment to 144
   BGP updates per day per (prefix, PoP) pair (paper §4.7); the enforcement
   engine consults one of these, and state can be synchronized across vBGP
   instances for AS-wide limits by sharing the limiter. *)

type window = { mutable start : float; mutable used : int }

type t = {
  limit : int;
  period : float;  (** window length, seconds *)
  windows : (string, window) Hashtbl.t;
}

let create ~limit ~period =
  if limit < 0 || period <= 0. then invalid_arg "Rate_limiter.create";
  { limit; period; windows = Hashtbl.create 64 }

let day = 86_400.

(* The platform's default announcement limiter: 144/day per key. *)
let peering_default () = create ~limit:144 ~period:day

let window t ~now key =
  match Hashtbl.find_opt t.windows key with
  | Some w ->
      if now -. w.start >= t.period then begin
        w.start <- now;
        w.used <- 0
      end;
      w
  | None ->
      let w = { start = now; used = 0 } in
      Hashtbl.replace t.windows key w;
      w

(* Try to consume one token for [key]; [false] means over budget. [limit]
   overrides the limiter default for this key (per-experiment budgets). *)
let allow ?limit t ~now key =
  let limit = match limit with Some l -> l | None -> t.limit in
  let w = window t ~now key in
  if w.used >= limit then false
  else begin
    w.used <- w.used + 1;
    true
  end

let remaining ?limit t ~now key =
  let limit = match limit with Some l -> l | None -> t.limit in
  let w = window t ~now key in
  max 0 (limit - w.used)

let used t ~now key = (window t ~now key).used

let reset t = Hashtbl.reset t.windows
