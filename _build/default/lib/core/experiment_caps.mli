(** The per-experiment capability framework (paper §4.7): experiments
    default to "basic" announcements only; each richer behaviour is a
    capability granted at approval time — the principle of least
    privilege. *)

type t = {
  max_poisoned : int;  (** ASes poisonable per announcement (default 0) *)
  max_communities : int;
      (** communities attachable beyond vBGP's own export-control tags,
          which are always permitted (default 0) *)
  max_large_communities : int;
  allow_transitive_attrs : bool;
      (** optional transitive attributes pass through unmodified *)
  allow_transit : bool;
      (** may announce routes learned from one neighbor to another *)
  allow_6to4 : bool;  (** may announce 6to4-mapped IPv6 space *)
  daily_update_budget : int;
      (** BGP updates per (prefix, PoP) per day; the platform default is
          144 — one every ten minutes on average *)
}

val default : t
(** Basic announcements only, 144 updates/day. *)

val with_poisoning : int -> t -> t
val with_communities : int -> t -> t
val with_large_communities : int -> t -> t
val with_transitive_attrs : t -> t
val with_transit : t -> t
val with_6to4 : t -> t
val with_update_budget : int -> t -> t
val pp : Format.formatter -> t -> unit
