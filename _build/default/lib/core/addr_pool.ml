(* Virtual address pools. vBGP assigns each BGP neighbor a private (IP, MAC)
   pair drawn from a local pool (127.65/16 in the paper's examples); the
   backbone extension (§4.4) additionally assigns every neighbor a
   platform-global IP from a pool shared by all PoPs (127.127/16), so that
   any PoP can recognize and re-alias any other PoP's neighbors. *)

open Netcore

type assignment = { key : string; ip : Ipv4.t; mac : Mac.t; index : int }

type t = {
  base : Prefix.t;
  mac_pool : int;  (** tag byte for {!Mac.local} *)
  mutable next : int;
  by_key : (string, assignment) Hashtbl.t;
  by_ip : (Ipv4.t, assignment) Hashtbl.t;
  by_mac : (Mac.t, assignment) Hashtbl.t;
}

let create ~base ~mac_pool =
  {
    base;
    mac_pool;
    next = 1 (* skip the network address *);
    by_key = Hashtbl.create 64;
    by_ip = Hashtbl.create 64;
    by_mac = Hashtbl.create 64;
  }

let base t = t.base

(* Allocate (or return the existing) assignment for [key]. *)
let allocate t key =
  match Hashtbl.find_opt t.by_key key with
  | Some a -> a
  | None ->
      if t.next >= Prefix.size t.base then
        failwith "Addr_pool.allocate: pool exhausted";
      let ip = Prefix.host t.base t.next in
      let mac = Mac.local ~pool:t.mac_pool t.next in
      let a = { key; ip; mac; index = t.next } in
      t.next <- t.next + 1;
      Hashtbl.replace t.by_key key a;
      Hashtbl.replace t.by_ip ip a;
      Hashtbl.replace t.by_mac mac a;
      a

let find t key = Hashtbl.find_opt t.by_key key
let of_ip t ip = Hashtbl.find_opt t.by_ip ip
let of_mac t mac = Hashtbl.find_opt t.by_mac mac

(* Is [ip] inside this pool's prefix (whether or not it is allocated)? *)
let contains t ip = Prefix.mem ip t.base

let release t key =
  match Hashtbl.find_opt t.by_key key with
  | None -> ()
  | Some a ->
      Hashtbl.remove t.by_key key;
      Hashtbl.remove t.by_ip a.ip;
      Hashtbl.remove t.by_mac a.mac

let allocated t = Hashtbl.fold (fun _ a acc -> a :: acc) t.by_key []
let count t = Hashtbl.length t.by_key
