(* The per-experiment capability framework (paper §4.7): experiments default
   to "basic" announcements only, and each richer behaviour is a capability
   granted at approval time — the principle of least privilege. *)

type t = {
  max_poisoned : int;
      (** ASes the experiment may poison per announcement (default 0). *)
  max_communities : int;
      (** BGP communities it may attach, beyond vBGP's own export-control
          communities which are always permitted (default 0). *)
  max_large_communities : int;
  allow_transitive_attrs : bool;
      (** optional transitive attributes pass through unmodified. *)
  allow_transit : bool;
      (** may announce routes learned from one neighbor to another
          (legitimate transit for an experimental prefix). *)
  allow_6to4 : bool;  (** may announce 6to4-mapped IPv6 space. *)
  daily_update_budget : int;
      (** BGP updates per (prefix, PoP) per day; the platform default is
          144 — one every ten minutes on average. *)
}

let default =
  {
    max_poisoned = 0;
    max_communities = 0;
    max_large_communities = 0;
    allow_transitive_attrs = false;
    allow_transit = false;
    allow_6to4 = false;
    daily_update_budget = 144;
  }

let with_poisoning n t = { t with max_poisoned = n }
let with_communities n t = { t with max_communities = n }
let with_large_communities n t = { t with max_large_communities = n }
let with_transitive_attrs t = { t with allow_transitive_attrs = true }
let with_transit t = { t with allow_transit = true }
let with_6to4 t = { t with allow_6to4 = true }
let with_update_budget n t = { t with daily_update_budget = n }

let pp ppf t =
  Fmt.pf ppf
    "caps{poison=%d comms=%d large=%d transitive=%b transit=%b 6to4=%b \
     budget=%d/day}"
    t.max_poisoned t.max_communities t.max_large_communities
    t.allow_transitive_attrs t.allow_transit t.allow_6to4
    t.daily_update_budget
