(* A host-side ARP implementation for stations on a simulated LAN:
   experiments resolving vBGP's virtual next-hop IPs (paper §3.2.2, step 6)
   and vBGP routers resolving global next-hop IPs across the backbone
   (§4.4) both use this. *)

open Netcore
open Sim

type t = {
  lan : Lan.t;
  mac : Mac.t;
  mutable ips : Ipv4.t list;  (** addresses this station answers for *)
  cache : (Ipv4.t, Mac.t) Hashtbl.t;
  pending : (Ipv4.t, (Mac.t -> unit) list) Hashtbl.t;
  mutable on_ip : src_mac:Mac.t -> Ipv4_packet.t -> unit;
      (** delivery of non-ARP traffic addressed to this station *)
}

let send_frame t ~dst ~ethertype payload =
  Lan.send t.lan { Eth.dst; src = t.mac; ethertype; payload }

let handle_arp t (a : Arp.t) =
  match a.op with
  | Arp.Request ->
      if List.exists (Ipv4.equal a.target_ip) t.ips then
        send_frame t ~dst:a.sender_mac ~ethertype:Eth.Arp
          (Arp.encode
             (Arp.reply ~sender_mac:t.mac ~sender_ip:a.target_ip
                ~target_mac:a.sender_mac ~target_ip:a.sender_ip))
  | Arp.Reply -> (
      Hashtbl.replace t.cache a.sender_ip a.sender_mac;
      match Hashtbl.find_opt t.pending a.sender_ip with
      | None -> ()
      | Some waiters ->
          Hashtbl.remove t.pending a.sender_ip;
          List.iter (fun k -> k a.sender_mac) (List.rev waiters))

let handle_frame t (frame : Eth.t) =
  match frame.ethertype with
  | Eth.Arp -> (
      match Arp.decode frame.payload with
      | Ok a -> handle_arp t a
      | Error _ -> ())
  | Eth.Ipv4 -> (
      match Ipv4_packet.decode frame.payload with
      | Ok p -> t.on_ip ~src_mac:frame.src p
      | Error _ -> ())
  | Eth.Ipv6 | Eth.Other _ -> ()

let attach lan ~mac ~ips =
  let t =
    {
      lan;
      mac;
      ips;
      cache = Hashtbl.create 16;
      pending = Hashtbl.create 16;
      on_ip = (fun ~src_mac:_ _ -> ());
    }
  in
  Lan.attach lan mac (handle_frame t);
  t

let set_ip_handler t f = t.on_ip <- f
let add_ip t ip = if not (List.exists (Ipv4.equal ip) t.ips) then t.ips <- ip :: t.ips
let mac t = t.mac
let cached t ip = Hashtbl.find_opt t.cache ip

(* Resolve [ip] to a MAC, querying the LAN on a cache miss. The callback
   fires when the reply arrives (simulated time). *)
let resolve t ip k =
  match Hashtbl.find_opt t.cache ip with
  | Some mac -> k mac
  | None ->
      let waiters =
        match Hashtbl.find_opt t.pending ip with Some l -> l | None -> []
      in
      Hashtbl.replace t.pending ip (k :: waiters);
      if waiters = [] then
        let sender_ip =
          match t.ips with a :: _ -> a | [] -> Ipv4.any
        in
        send_frame t ~dst:Mac.broadcast ~ethertype:Eth.Arp
          (Arp.encode (Arp.request ~sender_mac:t.mac ~sender_ip ~target_ip:ip))

(* Send an IP packet to the station owning [next_hop] (resolving first). *)
let send_ip t ~next_hop packet =
  resolve t next_hop (fun dst ->
      send_frame t ~dst ~ethertype:Eth.Ipv4 (Ipv4_packet.encode packet))
