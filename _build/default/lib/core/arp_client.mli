(** A host-side ARP implementation for stations on a simulated LAN.

    Experiments resolving vBGP's virtual next-hop IPs (paper §3.2.2 step 6)
    and vBGP routers resolving global next hops across the backbone (§4.4)
    both use this. *)

open Netcore
open Sim

type t = {
  lan : Lan.t;
  mac : Mac.t;
  mutable ips : Ipv4.t list;  (** addresses this station answers for *)
  cache : (Ipv4.t, Mac.t) Hashtbl.t;
  pending : (Ipv4.t, (Mac.t -> unit) list) Hashtbl.t;
  mutable on_ip : src_mac:Mac.t -> Ipv4_packet.t -> unit;
}

val attach : Lan.t -> mac:Mac.t -> ips:Ipv4.t list -> t
(** Join the segment; ARP requests for any of [ips] are answered with
    [mac]. *)

val set_ip_handler : t -> (src_mac:Mac.t -> Ipv4_packet.t -> unit) -> unit
(** Delivery of IPv4 traffic addressed to this station; [src_mac] carries
    vBGP's per-packet ingress attribution. *)

val add_ip : t -> Ipv4.t -> unit
val mac : t -> Mac.t
val cached : t -> Ipv4.t -> Mac.t option

val resolve : t -> Ipv4.t -> (Mac.t -> unit) -> unit
(** Resolve to a MAC, querying the LAN on a cache miss; concurrent queries
    for one address coalesce into a single request. *)

val send_ip : t -> next_hop:Ipv4.t -> Ipv4_packet.t -> unit
(** Resolve [next_hop], then frame and transmit the packet to it — the
    §3.2.2 forwarding sequence. *)
