(* The control-plane enforcement engine (paper §3.3, policies from §4.7).

   It interposes between experiments and the routing engine: every
   experiment announcement is validated against the experiment's allocation
   and capability grant, transformed where policy says to strip rather than
   reject, and rate-limited. The engine fails closed: if flagged overloaded
   it blocks all experiment announcements rather than risk leaking one. *)

open Netcore
open Bgp

type grant = {
  name : string;
  asns : Asn.t list;  (** ASNs the experiment may originate from *)
  prefixes : Prefix.t list;  (** IPv4 allocation *)
  prefixes_v6 : Prefix_v6.t list;  (** IPv6 allocation *)
  caps : Experiment_caps.t;
}

let grant ?(asns = []) ?(prefixes = []) ?(prefixes_v6 = [])
    ?(caps = Experiment_caps.default) name =
  { name; asns; prefixes; prefixes_v6; caps }

let owns_prefix g p = List.exists (fun a -> Prefix.subset ~sub:p ~super:a) g.prefixes

let owns_prefix_v6 g p =
  List.exists (fun a -> Prefix_v6.subset ~sub:p ~super:a) g.prefixes_v6

let owns_address g ip = List.exists (Prefix.mem ip) g.prefixes

type outcome =
  | Accepted of Msg.update  (** possibly transformed (attributes stripped) *)
  | Rejected of string list

type t = {
  platform_asns : Asn.t list;
      (** PEERING's own ASNs; legitimate in any experiment path *)
  control_community_asn : int;
      (** communities in this 16-bit namespace steer per-neighbor export and
          are always permitted (and consumed by the router, never leaked) *)
  limiter : Rate_limiter.t;
  trace : Sim.Trace.t option;
  mutable fail_closed : bool;
  mutable accepted : int;
  mutable rejected : int;
}

let create ?(platform_asns = []) ?(control_community_asn = 47065)
    ?(limiter = Rate_limiter.peering_default ()) ?trace () =
  {
    platform_asns;
    control_community_asn;
    limiter;
    trace;
    fail_closed = false;
    accepted = 0;
    rejected = 0;
  }

let set_fail_closed t v = t.fail_closed <- v
let stats t = (t.accepted, t.rejected)
let control_community_asn t = t.control_community_asn
let is_control_community t c = Community.asn c = t.control_community_asn

let log t ~now fmt =
  match t.trace with
  | Some trace -> Sim.Trace.record trace ~time:now ~category:"control" fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

(* 2002::/16: 6to4-mapped space needs its own capability (paper §4.7). *)
let six_to_four = Prefix_v6.make (Ipv6.of_string_exn "2002::") 16

(* Validate the AS path of an announcement. *)
let check_path (g : grant) platform_asns attrs errors =
  match Attr.as_path attrs with
  | None -> "announcement without AS_PATH" :: errors
  | Some path ->
      let errors =
        match Aspath.origin path with
        | Some o when List.exists (Asn.equal o) g.asns -> errors
        | Some o ->
            Fmt.str "origin AS %a not authorized for experiment %s" Asn.pp o
              g.name
            :: errors
        | None -> "AS path has no origin AS" :: errors
      in
      let errors =
        match Aspath.first path with
        | Some f
          when List.exists (Asn.equal f) g.asns
               || List.exists (Asn.equal f) platform_asns ->
            errors
        | Some _ when g.caps.Experiment_caps.allow_transit -> errors
        | Some f ->
            Fmt.str
              "path does not start with an experiment AS (as%a): transit \
               requires the transit capability"
              Asn.pp f
            :: errors
        | None -> errors
      in
      (* Foreign ASNs in the path count against the poisoning budget —
         unless the experiment legitimately transits routes, in which case
         the path carries the transited route's ASes by design. *)
      if g.caps.Experiment_caps.allow_transit then errors
      else
        let foreign =
          Aspath.to_asns path
          |> List.filter (fun a ->
                 (not (List.exists (Asn.equal a) platform_asns))
                 && not (List.exists (Asn.equal a) g.asns))
          |> List.sort_uniq Asn.compare
        in
        if List.length foreign > g.caps.Experiment_caps.max_poisoned then
          Fmt.str "%d poisoned ASes exceeds capability limit of %d"
            (List.length foreign) g.caps.Experiment_caps.max_poisoned
          :: errors
        else errors

(* Enforce community capabilities: control communities always pass; others
   are stripped when the capability is absent and rejected when over the
   granted budget. *)
let check_communities t (g : grant) attrs errors =
  let communities = Attr.communities attrs in
  let control, other = List.partition (is_control_community t) communities in
  let max = g.caps.Experiment_caps.max_communities in
  if other = [] then (attrs, errors)
  else if max = 0 then
    (Attr.with_communities control attrs, errors)
  else if List.length other > max then
    ( attrs,
      Fmt.str "%d communities exceeds capability limit of %d"
        (List.length other) max
      :: errors )
  else (attrs, errors)

let check_large_communities (g : grant) attrs errors =
  let larges = Attr.large_communities attrs in
  let max = g.caps.Experiment_caps.max_large_communities in
  if larges = [] then (attrs, errors)
  else if max = 0 then (Attr.remove_code 32 attrs, errors)
  else if List.length larges > max then
    ( attrs,
      Fmt.str "%d large communities exceeds capability limit of %d"
        (List.length larges) max
      :: errors )
  else (attrs, errors)

let check_transitive (g : grant) attrs errors =
  let unknown = Attr.unknown_transitive attrs in
  if unknown = [] || g.caps.Experiment_caps.allow_transitive_attrs then
    (attrs, errors)
  else
    ( List.filter
        (fun a ->
          match a with
          | Attr.Unknown _ -> not (Attr.is_optional_transitive a)
          | _ -> true)
        attrs,
      errors )

(* Validate one experiment update at [pop]. *)
let check t ~now ~pop (g : grant) (update : Msg.update) : outcome =
  if t.fail_closed then begin
    t.rejected <- t.rejected + 1;
    log t ~now "reject %s: enforcement engine failed closed" g.name;
    Rejected [ "enforcement engine is failing closed" ]
  end
  else begin
    let errors = [] in
    (* Address-space ownership for both directions of the update. *)
    let errors =
      List.fold_left
        (fun errors (n : Msg.nlri) ->
          if owns_prefix g n.prefix then errors
          else
            Fmt.str "prefix %a outside experiment allocation (hijack)"
              Prefix.pp n.prefix
            :: errors)
        errors
        (update.announced @ update.withdrawn)
    in
    (* IPv6 NLRI carried in MP attributes. *)
    let errors =
      List.fold_left
        (fun errors attr ->
          match attr with
          | Attr.Mp_reach { nlri; _ } | Attr.Mp_unreach nlri ->
              List.fold_left
                (fun errors (p, _) ->
                  if not (owns_prefix_v6 g p) then
                    Fmt.str "IPv6 prefix %a outside experiment allocation"
                      Prefix_v6.pp p
                    :: errors
                  else if
                    Prefix_v6.subset ~sub:p ~super:six_to_four
                    && not g.caps.Experiment_caps.allow_6to4
                  then
                    Fmt.str "6to4 prefix %a requires the 6to4 capability"
                      Prefix_v6.pp p
                    :: errors
                  else errors)
                errors nlri
          | _ -> errors)
        errors update.attrs
    in
    (* Path validation only applies when something is announced. *)
    let errors =
      if update.announced <> [] then
        check_path g t.platform_asns update.attrs errors
      else errors
    in
    let attrs, errors = check_communities t g update.attrs errors in
    let attrs, errors = check_large_communities g attrs errors in
    let attrs, errors = check_transitive g attrs errors in
    (* Rate limit: one token per touched (prefix, pop). Consume only when
       otherwise valid so probing rejects does not burn budget. *)
    let errors =
      if errors <> [] then errors
      else
        List.fold_left
          (fun errors (n : Msg.nlri) ->
            let key =
              Fmt.str "%s/%a@%s" g.name Prefix.pp n.prefix pop
            in
            let budget = g.caps.Experiment_caps.daily_update_budget in
            if Rate_limiter.allow ~limit:budget t.limiter ~now key then errors
            else
              Fmt.str "update budget exhausted for %a at %s (limit %d/day)"
                Prefix.pp n.prefix pop budget
              :: errors)
          errors
          (update.announced @ update.withdrawn)
    in
    match errors with
    | [] ->
        t.accepted <- t.accepted + 1;
        Accepted { update with attrs }
    | errors ->
        t.rejected <- t.rejected + 1;
        List.iter (fun e -> log t ~now "reject %s: %s" g.name e) errors;
        Rejected (List.rev errors)
  end

(* Split an update's communities into (control, upstream-visible): the
   router consumes control communities for export decisions and must not
   leak them to the Internet. *)
let split_control_communities t attrs =
  let control, other =
    List.partition (is_control_community t) (Attr.communities attrs)
  in
  (control, Attr.with_communities other attrs)
