(* The data-plane enforcement engine (paper §3.3): the eBPF-analog filter
   chain that inspects every experiment packet before it reaches the
   Internet. Filters can be stateless or stateful (they keep their own
   state, like an eBPF map) and return a verdict per packet. The built-in
   policies mirror PEERING's: source-address validation (no spoofing, no
   transiting foreign traffic) and per-PoP/per-neighbor traffic shaping. *)

open Netcore

type verdict =
  | Allow
  | Block of string
  | Transform of Ipv4_packet.t  (** rewrite, then continue down the chain *)

(* Where a packet entered the platform; filters use it for attribution
   (e.g. matching the source address against the sending experiment). *)
type meta = { ingress : string }

type filter = {
  name : string;
  apply : now:float -> meta:meta -> Ipv4_packet.t -> verdict;
}

type t = {
  mutable filters : filter list;  (** applied in order *)
  trace : Sim.Trace.t option;
  mutable allowed : int;
  mutable blocked : int;
}

let create ?trace () = { filters = []; trace; allowed = 0; blocked = 0 }

let add_filter t filter = t.filters <- t.filters @ [ filter ]
let filters t = List.map (fun f -> f.name) t.filters
let stats t = (t.allowed, t.blocked)

(* Anti-spoofing: the source address must belong to the experiment sending
   the packet (which also prevents transiting foreign traffic). [owner_of]
   maps an address to the owning experiment, if any; the ingress metadata
   identifies the sender. *)
let source_validation ~owner_of () =
  {
    name = "source-validation";
    apply =
      (fun ~now:_ ~meta (p : Ipv4_packet.t) ->
        match owner_of p.src with
        | None ->
            Block
              (Fmt.str "spoofed source %a: not experiment space" Ipv4.pp p.src)
        | Some owner ->
            if String.equal meta.ingress owner then Allow
            else
              Block
                (Fmt.str "source %a belongs to %s, not sender %s" Ipv4.pp
                   p.src owner meta.ingress));
  }

(* Token-bucket traffic shaping (bytes/second with a burst allowance),
   keyed by an arbitrary packet classifier: one bucket per PoP, neighbor,
   or experiment as desired. *)
let shaper ~name ~rate ~burst ~key_of () =
  let buckets : (string, float ref * float ref) Hashtbl.t =
    Hashtbl.create 16
  in
  {
    name;
    apply =
      (fun ~now ~meta:_ (p : Ipv4_packet.t) ->
        let key = key_of p in
        let tokens, last =
          match Hashtbl.find_opt buckets key with
          | Some b -> b
          | None ->
              let b = (ref burst, ref now) in
              Hashtbl.replace buckets key b;
              b
        in
        tokens := Float.min burst (!tokens +. ((now -. !last) *. rate));
        last := now;
        let size =
          float_of_int (Ipv4_packet.header_size + String.length p.payload)
        in
        if !tokens >= size then begin
          tokens := !tokens -. size;
          Allow
        end
        else Block (Fmt.str "rate limit exceeded for %s" key));
  }

(* TTL sanity: refuse packets that would expire inside the platform. *)
let ttl_guard ?(min_ttl = 2) () =
  {
    name = "ttl-guard";
    apply =
      (fun ~now:_ ~meta:_ (p : Ipv4_packet.t) ->
        if p.ttl < min_ttl then Block (Fmt.str "ttl %d too small" p.ttl)
        else Allow);
  }

type decision = Allowed of Ipv4_packet.t | Blocked of string

(* Run the chain. Transform verdicts rewrite the packet and continue; the
   decision carries the final (possibly rewritten) packet. *)
let check t ~now ~meta packet =
  let log reason =
    match t.trace with
    | Some trace ->
        Sim.Trace.record trace ~time:now ~category:"data" "blocked: %s" reason
    | None -> ()
  in
  let rec go packet = function
    | [] ->
        t.allowed <- t.allowed + 1;
        Allowed packet
    | f :: rest -> (
        match f.apply ~now ~meta packet with
        | Allow -> go packet rest
        | Block reason ->
            t.blocked <- t.blocked + 1;
            log reason;
            Blocked reason
        | Transform packet -> go packet rest)
  in
  go packet t.filters
