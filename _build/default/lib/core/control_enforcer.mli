(** The control-plane enforcement engine (paper §3.3; policies of §4.7).

    Interposes between experiments and the routing engine: every experiment
    announcement is validated against its allocation and capability grant,
    transformed where policy strips rather than rejects, and rate limited.
    Fails closed: when flagged overloaded it blocks all experiment
    announcements rather than risk leaking one. *)

open Netcore
open Bgp

(** An approved experiment's resources and capabilities. *)
type grant = {
  name : string;
  asns : Asn.t list;  (** ASNs it may originate from *)
  prefixes : Prefix.t list;  (** IPv4 allocation *)
  prefixes_v6 : Prefix_v6.t list;
  caps : Experiment_caps.t;
}

val grant :
  ?asns:Asn.t list ->
  ?prefixes:Prefix.t list ->
  ?prefixes_v6:Prefix_v6.t list ->
  ?caps:Experiment_caps.t ->
  string ->
  grant

val owns_prefix : grant -> Prefix.t -> bool
val owns_prefix_v6 : grant -> Prefix_v6.t -> bool
val owns_address : grant -> Ipv4.t -> bool

(** The verdict on one update. *)
type outcome =
  | Accepted of Msg.update  (** possibly transformed (attributes stripped) *)
  | Rejected of string list  (** every violated policy *)

type t

val create :
  ?platform_asns:Asn.t list ->
  ?control_community_asn:int ->
  ?limiter:Rate_limiter.t ->
  ?trace:Sim.Trace.t ->
  unit ->
  t

val set_fail_closed : t -> bool -> unit

val stats : t -> int * int
(** [(accepted, rejected)]. *)

val control_community_asn : t -> int
(** The 16-bit community namespace reserved for export control. *)

val is_control_community : t -> Community.t -> bool

val check : t -> now:float -> pop:string -> grant -> Msg.update -> outcome
(** Validate one experiment update at [pop]: address-space ownership (both
    announce and withdraw), origin ASN, transit, poisoning budget,
    community and large-community budgets (strip when the capability is
    absent, reject when over a granted budget), unknown transitive
    attributes, 6to4, and the per-(prefix, PoP) daily rate limit. *)

val split_control_communities : t -> Attr.set -> Community.t list * Attr.set
(** Partition off the export-control communities (consumed by the router,
    never leaked upstream). *)
