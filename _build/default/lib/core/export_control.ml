(* vBGP's community-based export control (paper §3.2.1): experiments tag
   announcements with whitelist/blacklist communities naming neighbors, and
   the router propagates each announcement only to the neighbors the tags
   allow. Neighbors are named by their platform-global export id (their
   index in the shared global address pool, §4.4), so a tag written at one
   PoP means the same neighbor everywhere.

   Community layout within the platform's control ASN:
   - value [1]                : internal marker for experiment-originated
                                routes on the backbone mesh
   - value [10000 + id]       : announce only to neighbor [id] (whitelist)
   - value [20000 + id]       : never announce to neighbor [id] (blacklist)
*)

open Bgp

let marker_experiment = 1
let whitelist_base = 10_000
let blacklist_base = 20_000
let max_export_id = 9_999

let check_id id =
  if id < 0 || id > max_export_id then
    invalid_arg "Export_control: export id out of range"

(* Tag: announce only to [id] (repeatable for a set of neighbors). *)
let announce_to ~ctl_asn id =
  check_id id;
  Community.make ctl_asn (whitelist_base + id)

(* Tag: do not announce to [id]. *)
let block ~ctl_asn id =
  check_id id;
  Community.make ctl_asn (blacklist_base + id)

let experiment_marker ~ctl_asn = Community.make ctl_asn marker_experiment

let is_marker ~ctl_asn c =
  Community.asn c = ctl_asn && Community.value c = marker_experiment

let whitelisted ~ctl_asn communities =
  List.filter_map
    (fun c ->
      if Community.asn c = ctl_asn then
        let v = Community.value c in
        if v >= whitelist_base && v < whitelist_base + max_export_id + 1 then
          Some (v - whitelist_base)
        else None
      else None)
    communities

let blacklisted ~ctl_asn communities =
  List.filter_map
    (fun c ->
      if Community.asn c = ctl_asn then
        let v = Community.value c in
        if v >= blacklist_base && v < blacklist_base + max_export_id + 1 then
          Some (v - blacklist_base)
        else None
      else None)
    communities

(* Should an announcement carrying [communities] go to neighbor
   [export_id]? No communities means "announce everywhere" (paper
   §3.2.1). *)
let allows ~ctl_asn ~export_id communities =
  let white = whitelisted ~ctl_asn communities in
  let black = blacklisted ~ctl_asn communities in
  (not (List.mem export_id black))
  && (white = [] || List.mem export_id white)
