(** Virtual address pools.

    vBGP assigns each BGP neighbor a private (IP, MAC) pair from a local
    pool (127.65/16 in the paper's examples); the backbone extension (§4.4)
    additionally assigns every neighbor a platform-global IP from a pool
    shared by all PoPs (127.127/16), so any PoP can re-alias any other
    PoP's neighbors. *)

open Netcore

type assignment = {
  key : string;  (** the entity this assignment belongs to *)
  ip : Ipv4.t;
  mac : Mac.t;
  index : int;  (** stable ordinal; doubles as the export id (§3.2.1) *)
}

type t

val create : base:Prefix.t -> mac_pool:int -> t
(** Allocate out of [base]; MACs are tagged with the [mac_pool] byte. *)

val base : t -> Prefix.t

val allocate : t -> string -> assignment
(** Idempotent per key. Raises [Failure] when the pool is exhausted. *)

val find : t -> string -> assignment option
val of_ip : t -> Ipv4.t -> assignment option
val of_mac : t -> Mac.t -> assignment option

val contains : t -> Ipv4.t -> bool
(** Inside the pool's prefix (whether or not allocated). *)

val release : t -> string -> unit
val allocated : t -> assignment list
val count : t -> int
