(** Keyed fixed-window rate limiting.

    PEERING limits each experiment to 144 BGP updates per day per
    (prefix, PoP) pair (paper §4.7). Sharing one limiter across vBGP
    instances gives AS-wide limits, as §3.3 describes. *)

type t

val create : limit:int -> period:float -> t
(** [limit] tokens per [period] seconds per key. *)

val day : float

val peering_default : unit -> t
(** The platform's announcement limiter: 144/day per key. *)

val allow : ?limit:int -> t -> now:float -> string -> bool
(** Consume one token for the key; [false] means over budget. [limit]
    overrides the default for this key (per-experiment budgets). *)

val remaining : ?limit:int -> t -> now:float -> string -> int
val used : t -> now:float -> string -> int
val reset : t -> unit
