(* The vBGP router (paper §3): virtualizes one BGP edge router's data and
   control planes across parallel experiments.

   Control plane:
   - Routes learned from each neighbor are stored per neighbor, their BGP
     next-hop rewritten to the neighbor's virtual IP, and exported to every
     experiment over ADD-PATH sessions (path id = the neighbor's table id).
   - Experiment announcements pass through the control-plane enforcement
     engine, then propagate to the neighbors selected by export-control
     communities, to the backbone mesh, and onward to neighbors at remote
     PoPs (§4.4).

   Data plane:
   - Each neighbor owns a virtual MAC and a forwarding table; the
     destination MAC of a frame from an experiment selects the table, so an
     experiment's per-packet routing decision rides in the layer-2 header
     with no encapsulation (§3.2.2).
   - Frames toward experiments carry the delivering neighbor's virtual MAC
     as source, giving experiments per-packet ingress visibility.
   - Backbone forwarding repeats the same trick hop by hop using the shared
     global pool (§4.4): a local alias (IP, MAC) is minted for each remote
     neighbor, and its table's next hop is the neighbor's global IP,
     resolved over the backbone segment with ARP. *)

open Netcore
open Bgp
open Sim

(* -- per-peer state ------------------------------------------------------- *)

type neighbor_state = {
  info : Neighbor.t;
  rib_in : Rib.Table.t;
  mutable session : Session.t option;  (** None for backbone aliases *)
  mutable deliver : Ipv4_packet.t -> unit;
      (** hand an outbound packet to the (real) neighbor *)
  export_id : int;  (** platform-global id used in export-control tags *)
}

type variant = {
  v_path_id : int;  (** experiment-chosen ADD-PATH id (0 when absent) *)
  v_attrs : Attr.set;  (** post-enforcement, control communities intact *)
}

type experiment_state = {
  grant : Control_enforcer.grant;
  exp_session : Session.t;
  exp_mac : Mac.t;  (** experiment's station on the experiment LAN *)
  g_ip : Ipv4.t;  (** global-pool identity for cross-PoP delivery *)
  g_idx : int;
  routes : (Prefix.t, variant list ref) Hashtbl.t;
  routes_v6 : (Prefix_v6.t, variant list ref) Hashtbl.t;
      (** IPv6 announcements (MP-BGP); control plane only *)
  mutable exp_synced : bool;
  (* PlanetFlow-style attribution (§3.1): per-experiment traffic totals. *)
  mutable att_packets_out : int;
  mutable att_bytes_out : int;
  mutable att_packets_in : int;
}

type mesh_peer = { pop_name : string; mesh_session : Session.t }

type mesh_import =
  | Ialias of { alias_id : int }
      (** a remote neighbor's route; the alias carries its traffic *)
  | Iremote_exp of { prefix : Prefix.t }

type owner =
  | Local_exp of string
  | Remote_exp of { pop : string; via_global : Ipv4.t }

type counters = {
  mutable updates_from_neighbors : int;
  mutable updates_from_experiments : int;
  mutable updates_from_mesh : int;
  mutable packets_to_neighbors : int;
  mutable packets_to_experiments : int;
  mutable packets_over_backbone : int;
  mutable packets_dropped : int;
  mutable icmp_sent : int;
}

type t = {
  engine : Engine.t;
  trace : Trace.t;
  name : string;  (** PoP name, e.g. "amsterdam01" *)
  asn : Asn.t;  (** the platform (mux) ASN prepended on neighbor export *)
  router_id : Ipv4.t;
  primary_ip : Ipv4.t;  (** sources ICMP errors (paper §5) *)
  mutable exp_lan : Lan.t;
  router_mac : Mac.t;
  mutable bb : Arp_client.t option;  (** backbone segment attachment *)
  local_pool : Addr_pool.t;
  global_pool : Addr_pool.t;  (** shared across all PoPs *)
  control : Control_enforcer.t;
  data : Data_enforcer.t;
  fibs : Rib.Fib.Set.t;
  neighbors : (int, neighbor_state) Hashtbl.t;
  mutable next_neighbor_id : int;
  by_vmac : (Mac.t, int) Hashtbl.t;
  by_vip : (Ipv4.t, int) Hashtbl.t;
  by_global_ip : (Ipv4.t, int) Hashtbl.t;  (** local neighbors only *)
  alias_by_global : (Ipv4.t, int) Hashtbl.t;  (** remote neighbors *)
  experiments : (string, experiment_state) Hashtbl.t;
  by_exp_mac : (Mac.t, string) Hashtbl.t;
  mutable owner_trie : owner Ptrie.V4.t;
  mutable mesh : mesh_peer list;
  mesh_imports : (string * int, mesh_import) Hashtbl.t;
  remote_exp_routes : (string * int, Prefix.t * Attr.set) Hashtbl.t;
  adj_out : (int, (Prefix.t, Attr.set) Hashtbl.t) Hashtbl.t;
      (** per-neighbor last-sent attributes *)
  counters : counters;
}

let mesh_exp_id_base = 100_000

let create ~engine ?(trace = Trace.create ()) ~name ~asn ~router_id
    ~primary_ip ~local_pool ~global_pool ?control ?data () =
  let control =
    match control with
    | Some c -> c
    | None -> Control_enforcer.create ~platform_asns:[ asn ] ~trace ()
  in
  let data = match data with Some d -> d | None -> Data_enforcer.create ~trace () in
  let t =
    {
      engine;
      trace;
      name;
      asn;
      router_id;
      primary_ip;
      exp_lan = Lan.create engine;
      router_mac = Mac.local ~pool:0xee (Hashtbl.hash name land 0xffffff);
      bb = None;
      local_pool = Addr_pool.create ~base:local_pool ~mac_pool:0x65;
      global_pool;
      control;
      data;
      fibs = Rib.Fib.Set.create ();
      neighbors = Hashtbl.create 32;
      next_neighbor_id = 1;
      by_vmac = Hashtbl.create 32;
      by_vip = Hashtbl.create 32;
      by_global_ip = Hashtbl.create 32;
      alias_by_global = Hashtbl.create 32;
      experiments = Hashtbl.create 8;
      by_exp_mac = Hashtbl.create 8;
      owner_trie = Ptrie.V4.empty;
      mesh = [];
      mesh_imports = Hashtbl.create 64;
      remote_exp_routes = Hashtbl.create 16;
      adj_out = Hashtbl.create 32;
      counters =
        {
          updates_from_neighbors = 0;
          updates_from_experiments = 0;
          updates_from_mesh = 0;
          packets_to_neighbors = 0;
          packets_to_experiments = 0;
          packets_over_backbone = 0;
          packets_dropped = 0;
          icmp_sent = 0;
        };
    }
  in
  t

let name t = t.name
let asn t = t.asn
let experiment_lan t = t.exp_lan
let router_mac t = t.router_mac
let counters t = t.counters
let trace t = t.trace
let control_enforcer t = t.control
let data_enforcer t = t.data
let fib_set t = t.fibs
let control_asn t = Control_enforcer.control_community_asn t.control

let log t fmt =
  Trace.record t.trace ~time:(Engine.now t.engine) ~category:"router" fmt

let neighbor t id = Hashtbl.find_opt t.neighbors id

let neighbor_states t =
  Hashtbl.fold (fun _ ns acc -> ns :: acc) t.neighbors []
  |> List.sort (fun a b -> Int.compare a.info.Neighbor.id b.info.Neighbor.id)

let real_neighbors t =
  List.filter (fun ns -> not (Neighbor.is_alias ns.info)) (neighbor_states t)

let experiment t name = Hashtbl.find_opt t.experiments name

(* -- experiment-facing export --------------------------------------------- *)

let send_to_experiment (e : experiment_state) update =
  if Session.established e.exp_session then
    Session.send_update e.exp_session update

(* Export a route learned from neighbor [ns] to all experiments: next hop
   becomes the neighbor's virtual IP, the path id its table id. *)
let export_route_to_experiments t (ns : neighbor_state) prefix attrs =
  let attrs = Attr.with_next_hop ns.info.Neighbor.virtual_ip attrs in
  let update =
    Msg.update ~attrs
      ~announced:[ Msg.nlri ~path_id:ns.info.Neighbor.id prefix ]
      ()
  in
  Hashtbl.iter (fun _ e -> send_to_experiment e update) t.experiments

let export_withdraw_to_experiments t (ns : neighbor_state) prefix =
  let update =
    Msg.update ~withdrawn:[ Msg.nlri ~path_id:ns.info.Neighbor.id prefix ] ()
  in
  Hashtbl.iter (fun _ e -> send_to_experiment e update) t.experiments

(* Full-table sync when an experiment session reaches Established: every
   route from every (real and alias) neighbor, with rewritten next hops. *)
let sync_experiment t (e : experiment_state) =
  if not e.exp_synced then begin
    e.exp_synced <- true;
    List.iter
      (fun ns ->
        Rib.Table.iter_routes
          (fun (r : Rib.Route.t) ->
            let attrs = Attr.with_next_hop ns.info.Neighbor.virtual_ip r.attrs in
            send_to_experiment e
              (Msg.update ~attrs
                 ~announced:[ Msg.nlri ~path_id:ns.info.Neighbor.id r.prefix ]
                 ()))
          ns.rib_in)
      (neighbor_states t);
    log t "synced full table to experiment %s" e.grant.Control_enforcer.name
  end

(* -- mesh export ----------------------------------------------------------- *)

let send_to_mesh t update =
  List.iter
    (fun m ->
      if Session.established m.mesh_session then
        Session.send_update m.mesh_session update)
    t.mesh

(* Neighbor-learned routes go to the mesh with the neighbor's *global* IP
   as next hop, so remote PoPs can alias it (§4.4). *)
let export_route_to_mesh t (ns : neighbor_state) prefix attrs =
  match ns.info.Neighbor.global_ip with
  | None -> ()
  | Some g ->
      let attrs = Attr.with_next_hop g attrs in
      send_to_mesh t
        (Msg.update ~attrs
           ~announced:[ Msg.nlri ~path_id:ns.info.Neighbor.id prefix ]
           ())

let export_withdraw_to_mesh t (ns : neighbor_state) prefix =
  if ns.info.Neighbor.global_ip <> None then
    send_to_mesh t
      (Msg.update ~withdrawn:[ Msg.nlri ~path_id:ns.info.Neighbor.id prefix ] ())

(* -- neighbor-facing export (experiment announcements) --------------------- *)

let adj_out_table t neighbor_id =
  match Hashtbl.find_opt t.adj_out neighbor_id with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.replace t.adj_out neighbor_id tbl;
      tbl

(* All live announcement variants for [prefix], local and remote. *)
let variants_for_prefix t prefix =
  let local =
    Hashtbl.fold
      (fun _ e acc ->
        match Hashtbl.find_opt e.routes prefix with
        | Some vs -> List.map (fun v -> v.v_attrs) !vs @ acc
        | None -> acc)
      t.experiments []
  in
  let remote =
    Hashtbl.fold
      (fun _ (p, attrs) acc ->
        if Prefix.equal p prefix then attrs :: acc else acc)
      t.remote_exp_routes []
  in
  local @ remote

(* Attributes as announced to a real eBGP neighbor: platform ASN prepended,
   next hop set to our interface, control communities and iBGP-only
   attributes stripped. *)
let neighbor_facing_attrs t attrs =
  let _control, attrs =
    Control_enforcer.split_control_communities t.control attrs
  in
  let path =
    match Attr.as_path attrs with Some p -> p | None -> Aspath.empty
  in
  attrs
  |> Attr.with_as_path (Aspath.prepend t.asn path)
  |> Attr.with_next_hop t.primary_ip
  |> Attr.remove_code 5 (* LOCAL_PREF is iBGP-only *)

(* Recompute what neighbor [ns] should currently hear for [prefix], and
   send the delta. *)
let reexport_prefix_to_neighbor t (ns : neighbor_state) prefix =
  match ns.info.Neighbor.kind with
  | Neighbor.Backbone_alias _ -> ()
  | _ ->
      let ctl_asn = control_asn t in
      let allowed =
        List.filter
          (fun attrs ->
            let communities = Attr.communities attrs in
            (* NO_EXPORT (RFC 1997) keeps the route inside the platform:
               never exported to any eBGP neighbor. *)
            (not (List.exists (Community.equal Community.no_export) communities))
            && Export_control.allows ~ctl_asn ~export_id:ns.export_id
                 communities)
          (variants_for_prefix t prefix)
      in
      let out = adj_out_table t ns.info.Neighbor.id in
      let previously = Hashtbl.find_opt out prefix in
      match (allowed, previously) with
      | [], None -> ()
      | [], Some _ ->
          Hashtbl.remove out prefix;
          (match ns.session with
          | Some s when Session.established s ->
              Session.send_update s (Msg.update ~withdrawn:[ Msg.nlri prefix ] ())
          | _ -> ());
          log t "withdraw %a from neighbor %d" Prefix.pp prefix
            ns.info.Neighbor.id
      | attrs :: _, _ ->
          let facing = neighbor_facing_attrs t attrs in
          let changed =
            match previously with
            | Some old -> not (Attr.equal_set old facing)
            | None -> true
          in
          if changed then begin
            Hashtbl.replace out prefix facing;
            (match ns.session with
            | Some s when Session.established s ->
                Session.send_update s
                  (Msg.update ~attrs:facing ~announced:[ Msg.nlri prefix ] ())
            | _ -> ());
            log t "announce %a to neighbor %d" Prefix.pp prefix
              ns.info.Neighbor.id
          end

let reexport_prefix t prefix =
  List.iter (fun ns -> reexport_prefix_to_neighbor t ns prefix) (real_neighbors t)

(* -- IPv6 (MP-BGP) experiment announcements: control plane only ----------- *)

(* The router's IPv6 next hop as seen by neighbors (PEERING's /32). *)
let v6_next_hop = Ipv6.of_string_exn "2804:269c::1"

let variants_for_prefix_v6 t prefix =
  Hashtbl.fold
    (fun _ e acc ->
      match Hashtbl.find_opt e.routes_v6 prefix with
      | Some vs -> List.map (fun v -> v.v_attrs) !vs @ acc
      | None -> acc)
    t.experiments []

let reexport_prefix_v6_to_neighbor t (ns : neighbor_state) prefix =
  match ns.info.Neighbor.kind with
  | Neighbor.Backbone_alias _ -> ()
  | _ -> (
      let ctl_asn = control_asn t in
      let allowed =
        List.filter
          (fun attrs ->
            let communities = Attr.communities attrs in
            (not
               (List.exists (Community.equal Community.no_export) communities))
            && Export_control.allows ~ctl_asn ~export_id:ns.export_id
                 communities)
          (variants_for_prefix_v6 t prefix)
      in
      match ns.session with
      | Some s when Session.established s -> (
          match allowed with
          | [] ->
              Session.send_update s
                (Msg.update
                   ~attrs:[ Attr.Mp_unreach [ (prefix, None) ] ]
                   ())
          | attrs :: _ ->
              let facing =
                neighbor_facing_attrs t attrs
                |> Attr.remove_code 3 (* v4 NEXT_HOP is meaningless here *)
                |> Attr.set_attr
                     (Attr.Mp_reach
                        { next_hop = v6_next_hop; nlri = [ (prefix, None) ] })
              in
              Session.send_update s (Msg.update ~attrs:facing ()))
      | _ -> ())

let reexport_prefix_v6 t prefix =
  List.iter
    (fun ns -> reexport_prefix_v6_to_neighbor t ns prefix)
    (real_neighbors t)

(* Record/withdraw the v6 NLRI of an accepted experiment update. *)
let process_experiment_v6 t (e : experiment_state) (u : Msg.update) =
  List.iter
    (fun attr ->
      match attr with
      | Attr.Mp_unreach nlri ->
          List.iter
            (fun (prefix, path_id) ->
              let pid = match path_id with Some p -> p | None -> 0 in
              (match Hashtbl.find_opt e.routes_v6 prefix with
              | Some vs ->
                  vs := List.filter (fun v -> v.v_path_id <> pid) !vs;
                  if !vs = [] then Hashtbl.remove e.routes_v6 prefix
              | None -> ());
              reexport_prefix_v6 t prefix)
            nlri
      | Attr.Mp_reach { nlri; _ } ->
          let base_attrs = Attr.remove_code 14 u.Msg.attrs in
          List.iter
            (fun (prefix, path_id) ->
              let pid = match path_id with Some p -> p | None -> 0 in
              let v = { v_path_id = pid; v_attrs = base_attrs } in
              let vs =
                match Hashtbl.find_opt e.routes_v6 prefix with
                | Some vs -> vs
                | None ->
                    let vs = ref [] in
                    Hashtbl.replace e.routes_v6 prefix vs;
                    vs
              in
              vs := v :: List.filter (fun v -> v.v_path_id <> pid) !vs;
              reexport_prefix_v6 t prefix)
            nlri
      | _ -> ())
    u.Msg.attrs

(* -- neighbor route learning ----------------------------------------------- *)

(* Process one UPDATE from neighbor [id]; public so benchmarks can drive the
   pipeline without sessions. *)
let process_neighbor_update t ~neighbor_id (u : Msg.update) =
  match neighbor t neighbor_id with
  | None -> invalid_arg "Router.process_neighbor_update: unknown neighbor"
  | Some ns ->
      t.counters.updates_from_neighbors <-
        t.counters.updates_from_neighbors + 1;
      let now = Engine.now t.engine in
      let fib = Rib.Fib.Set.table t.fibs ns.info.Neighbor.id in
      List.iter
        (fun (n : Msg.nlri) ->
          ignore
            (Rib.Table.withdraw ns.rib_in ~prefix:n.prefix
               ~peer_ip:ns.info.Neighbor.ip ~path_id:None);
          Rib.Fib.remove fib n.prefix;
          export_withdraw_to_experiments t ns n.prefix;
          export_withdraw_to_mesh t ns n.prefix)
        u.withdrawn;
      if u.announced <> [] then begin
        let source =
          Rib.Route.source ~peer_ip:ns.info.Neighbor.ip
            ~peer_asn:ns.info.Neighbor.asn ()
        in
        List.iter
          (fun (n : Msg.nlri) ->
            let route =
              Rib.Route.make ~learned_at:now ~prefix:n.prefix ~attrs:u.attrs
                ~source ()
            in
            ignore (Rib.Table.update ns.rib_in route);
            Rib.Fib.insert fib n.prefix
              {
                Rib.Fib.next_hop = ns.info.Neighbor.ip;
                neighbor = ns.info.Neighbor.id;
              };
            export_route_to_experiments t ns n.prefix u.attrs;
            export_route_to_mesh t ns n.prefix u.attrs)
          u.announced
      end

(* -- experiment announcements ---------------------------------------------- *)

let mesh_path_id (e : experiment_state) v_path_id =
  mesh_exp_id_base + (e.g_idx * 64) + (v_path_id land 63)

let export_exp_route_to_mesh t (e : experiment_state) prefix (v : variant) =
  let ctl_asn = control_asn t in
  let attrs =
    v.v_attrs
    |> Attr.with_next_hop e.g_ip
    |> Attr.add_community (Export_control.experiment_marker ~ctl_asn)
  in
  send_to_mesh t
    (Msg.update ~attrs
       ~announced:[ Msg.nlri ~path_id:(mesh_path_id e v.v_path_id) prefix ]
       ())

let export_exp_withdraw_to_mesh t (e : experiment_state) prefix v_path_id =
  send_to_mesh t
    (Msg.update
       ~withdrawn:[ Msg.nlri ~path_id:(mesh_path_id e v_path_id) prefix ]
       ())

(* Process one UPDATE from experiment [name] through the enforcement
   engine; public for direct benchmarking of the security pipeline. *)
let process_experiment_update t ~experiment:exp_name (u : Msg.update) =
  match experiment t exp_name with
  | None -> invalid_arg "Router.process_experiment_update: unknown experiment"
  | Some e -> (
      t.counters.updates_from_experiments <-
        t.counters.updates_from_experiments + 1;
      let now = Engine.now t.engine in
      match
        Control_enforcer.check t.control ~now ~pop:t.name e.grant u
      with
      | Control_enforcer.Rejected reasons ->
          log t "rejected update from %s: %s" exp_name
            (String.concat "; " reasons);
          Error reasons
      | Control_enforcer.Accepted u ->
          (* Withdrawals: remove the matching variant. *)
          List.iter
            (fun (n : Msg.nlri) ->
              let pid = match n.path_id with Some p -> p | None -> 0 in
              match Hashtbl.find_opt e.routes n.prefix with
              | None -> ()
              | Some vs ->
                  vs := List.filter (fun v -> v.v_path_id <> pid) !vs;
                  if !vs = [] then begin
                    Hashtbl.remove e.routes n.prefix;
                    t.owner_trie <- Ptrie.V4.remove n.prefix t.owner_trie
                  end;
                  export_exp_withdraw_to_mesh t e n.prefix pid;
                  reexport_prefix t n.prefix)
            u.withdrawn;
          (* Announcements: record/replace the variant. *)
          List.iter
            (fun (n : Msg.nlri) ->
              let pid = match n.path_id with Some p -> p | None -> 0 in
              let v = { v_path_id = pid; v_attrs = u.attrs } in
              let vs =
                match Hashtbl.find_opt e.routes n.prefix with
                | Some vs -> vs
                | None ->
                    let vs = ref [] in
                    Hashtbl.replace e.routes n.prefix vs;
                    vs
              in
              vs := v :: List.filter (fun v -> v.v_path_id <> pid) !vs;
              t.owner_trie <-
                Ptrie.V4.add n.prefix (Local_exp exp_name) t.owner_trie;
              export_exp_route_to_mesh t e n.prefix v;
              reexport_prefix t n.prefix)
            u.announced;
          process_experiment_v6 t e u;
          Ok ())

(* -- mesh import ------------------------------------------------------------ *)

(* Forward reference: the experiment-LAN frame handler is defined with the
   data plane below, but alias creation (control plane) must attach LAN
   stations that use it. *)
let exp_lan_frame_handler :
    (t -> station_neighbor:int option -> Eth.t -> unit) ref =
  ref (fun _ ~station_neighbor:_ _ -> ())

(* Find or create the local alias pseudo-neighbor for a remote neighbor's
   global IP (§4.4). *)
let alias_for_global t ~pop global_ip =
  match Hashtbl.find_opt t.alias_by_global global_ip with
  | Some id -> (Hashtbl.find t.neighbors id, false)
  | None ->
      let id = t.next_neighbor_id in
      t.next_neighbor_id <- t.next_neighbor_id + 1;
      let a =
        Addr_pool.allocate t.local_pool
          (Printf.sprintf "global:%s" (Ipv4.to_string global_ip))
      in
      (* The alias shares the remote neighbor's export id so export-control
         tags mean the same thing at every PoP. *)
      let export_id =
        match Addr_pool.of_ip t.global_pool global_ip with
        | Some g -> g.Addr_pool.index
        | None -> 0
      in
      let info =
        {
          Neighbor.id;
          asn = t.asn;
          ip = global_ip;
          kind = Neighbor.Backbone_alias { remote_pop = pop };
          virtual_ip = a.Addr_pool.ip;
          virtual_mac = a.Addr_pool.mac;
          global_ip = Some global_ip;
        }
      in
      let ns =
        {
          info;
          rib_in = Rib.Table.create ();
          session = None;
          deliver = (fun _ -> ());
          export_id;
        }
      in
      Hashtbl.replace t.neighbors id ns;
      Hashtbl.replace t.by_vmac info.Neighbor.virtual_mac id;
      Hashtbl.replace t.by_vip info.Neighbor.virtual_ip id;
      Hashtbl.replace t.alias_by_global global_ip id;
      (* The alias answers on the experiment LAN like any neighbor. *)
      Lan.attach t.exp_lan info.Neighbor.virtual_mac
        (fun frame -> !exp_lan_frame_handler t ~station_neighbor:(Some id) frame);
      log t "alias neighbor %d for global %a (%s)" id Ipv4.pp global_ip pop;
      (ns, true)

let process_mesh_update t ~pop (u : Msg.update) =
  t.counters.updates_from_mesh <- t.counters.updates_from_mesh + 1;
  let now = Engine.now t.engine in
  let ctl_asn = control_asn t in
  (* Withdrawals are resolved through the import map. *)
  List.iter
    (fun (n : Msg.nlri) ->
      let pid = match n.path_id with Some p -> p | None -> 0 in
      match Hashtbl.find_opt t.mesh_imports (pop, pid) with
      | Some (Ialias { alias_id }) -> (
          match neighbor t alias_id with
          | Some ns ->
              ignore
                (Rib.Table.withdraw ns.rib_in ~prefix:n.prefix
                   ~peer_ip:ns.info.Neighbor.virtual_ip ~path_id:None);
              Rib.Fib.remove
                (Rib.Fib.Set.table t.fibs alias_id)
                n.prefix;
              export_withdraw_to_experiments t ns n.prefix
          | None -> ())
      | Some (Iremote_exp { prefix }) ->
          Hashtbl.remove t.remote_exp_routes (pop, pid);
          t.owner_trie <- Ptrie.V4.remove prefix t.owner_trie;
          reexport_prefix t prefix
      | None -> ())
    u.withdrawn;
  if u.announced <> [] then begin
    let next_hop = Attr.next_hop u.attrs in
    let is_exp =
      List.exists
        (Export_control.is_marker ~ctl_asn)
        (Attr.communities u.attrs)
    in
    match next_hop with
    | None -> ()
    | Some g when not is_exp ->
        (* A remote neighbor's route: alias it and expose to experiments. *)
        let ns, _created = alias_for_global t ~pop g in
        let fib = Rib.Fib.Set.table t.fibs ns.info.Neighbor.id in
        let source =
          Rib.Route.source ~peer_ip:ns.info.Neighbor.virtual_ip
            ~peer_asn:t.asn ~ebgp:false ()
        in
        List.iter
          (fun (n : Msg.nlri) ->
            let pid = match n.path_id with Some p -> p | None -> 0 in
            Hashtbl.replace t.mesh_imports (pop, pid)
              (Ialias { alias_id = ns.info.Neighbor.id });
            let route =
              Rib.Route.make ~learned_at:now ~prefix:n.prefix ~attrs:u.attrs
                ~source ()
            in
            ignore (Rib.Table.update ns.rib_in route);
            Rib.Fib.insert fib n.prefix
              { Rib.Fib.next_hop = g; neighbor = ns.info.Neighbor.id };
            export_route_to_experiments t ns n.prefix u.attrs)
          u.announced
    | Some g ->
        (* A remote experiment's announcement: remember it for neighbor
           export here, and route its traffic toward the remote PoP. *)
        let attrs =
          Attr.remove_communities
            ~keep:(fun c -> not (Export_control.is_marker ~ctl_asn c))
            u.attrs
        in
        List.iter
          (fun (n : Msg.nlri) ->
            let pid = match n.path_id with Some p -> p | None -> 0 in
            Hashtbl.replace t.remote_exp_routes (pop, pid) (n.prefix, attrs);
            Hashtbl.replace t.mesh_imports (pop, pid)
              (Iremote_exp { prefix = n.prefix });
            t.owner_trie <-
              Ptrie.V4.add n.prefix
                (Remote_exp { pop; via_global = g })
                t.owner_trie;
            reexport_prefix t n.prefix)
          u.announced
  end

(* -- data plane -------------------------------------------------------------- *)

let send_frame_on_exp_lan t ~src ~dst payload =
  Lan.send t.exp_lan { Eth.dst; src; ethertype = Eth.Ipv4; payload }

(* Deliver a packet to a local experiment, rewriting the source MAC to the
   virtual MAC of the neighbor that brought it (paper §3.2.2). *)
let deliver_to_local_experiment t ~via_mac exp_name packet =
  match experiment t exp_name with
  | None -> t.counters.packets_dropped <- t.counters.packets_dropped + 1
  | Some e ->
      t.counters.packets_to_experiments <-
        t.counters.packets_to_experiments + 1;
      e.att_packets_in <- e.att_packets_in + 1;
      send_frame_on_exp_lan t ~src:via_mac ~dst:e.exp_mac
        (Ipv4_packet.encode packet)

let icmp_ttl_exceeded t (expired : Ipv4_packet.t) =
  let original =
    let full = Ipv4_packet.encode expired in
    String.sub full 0 (min (String.length full) 28)
  in
  t.counters.icmp_sent <- t.counters.icmp_sent + 1;
  Ipv4_packet.make ~src:t.primary_ip ~dst:expired.src
    ~protocol:Ipv4_packet.Icmp
    (Icmp.encode (Icmp.Ttl_exceeded { original }))

(* Forward a packet over the backbone toward [global_ip] (ARP on the
   backbone segment, then a frame to the owning PoP; §4.4). *)
let forward_over_backbone t ~global_ip packet =
  match t.bb with
  | None -> t.counters.packets_dropped <- t.counters.packets_dropped + 1
  | Some bb ->
      t.counters.packets_over_backbone <-
        t.counters.packets_over_backbone + 1;
      Arp_client.send_ip bb ~next_hop:global_ip packet

(* An inbound packet destined to experiment space, arriving from local
   neighbor [via] (or from the backbone when [via] is None). *)
let deliver_inbound t ?via packet =
  let dst = packet.Ipv4_packet.dst in
  match Ptrie.lookup_v4 dst t.owner_trie with
  | Some (_, Local_exp exp_name) ->
      let via_mac =
        match via with
        | Some ns -> ns.info.Neighbor.virtual_mac
        | None -> t.router_mac
      in
      deliver_to_local_experiment t ~via_mac exp_name packet
  | Some (_, Remote_exp { via_global; _ }) ->
      forward_over_backbone t ~global_ip:via_global packet
  | None -> t.counters.packets_dropped <- t.counters.packets_dropped + 1

(* Put a station for global IP [g] on the backbone segment: it answers ARP
   for [g] and hands arriving packets to [receive] (§4.4). *)
let register_global_station t lan ~g ~receive =
  let gmac =
    match Addr_pool.of_ip t.global_pool g with
    | Some a -> a.Addr_pool.mac
    | None -> Mac.zero
  in
  let station = Arp_client.attach lan ~mac:gmac ~ips:[ g ] in
  Arp_client.set_ip_handler station (fun ~src_mac:_ packet -> receive packet)

(* Backbone delivery toward local neighbor [id]. *)
let backbone_station_for_neighbor t id packet =
  match neighbor t id with
  | Some ns when not (Neighbor.is_alias ns.info) ->
      if packet.Ipv4_packet.ttl <= 1 then
        deliver_inbound t (icmp_ttl_exceeded t packet)
      else begin
        t.counters.packets_to_neighbors <- t.counters.packets_to_neighbors + 1;
        ns.deliver (Ipv4_packet.decrement_ttl packet)
      end
  | _ -> ()

(* Entry point for packets handed to us by a real neighbor (traffic from
   the Internet toward experiment prefixes). *)
let inject_from_neighbor t ~neighbor_id packet =
  match neighbor t neighbor_id with
  | None -> invalid_arg "Router.inject_from_neighbor: unknown neighbor"
  | Some ns -> deliver_inbound t ~via:ns packet

(* Forward a frame an experiment put on the wire: the destination MAC
   picks the neighbor table (the heart of §3.2.2). *)
let forward_experiment_frame t ~neighbor_id (frame : Eth.t) =
  match (neighbor t neighbor_id, Ipv4_packet.decode frame.payload) with
  | None, _ | _, Error _ ->
      t.counters.packets_dropped <- t.counters.packets_dropped + 1
  | Some ns, Ok packet -> (
      let now = Engine.now t.engine in
      let ingress =
        match Hashtbl.find_opt t.by_exp_mac frame.src with
        | Some name -> name
        | None -> Printf.sprintf "unknown:%s" (Mac.to_string frame.src)
      in
      match
        Data_enforcer.check t.data ~now ~meta:{ Data_enforcer.ingress } packet
      with
      | Data_enforcer.Blocked _ ->
          t.counters.packets_dropped <- t.counters.packets_dropped + 1
      | Data_enforcer.Allowed packet ->
          (match Hashtbl.find_opt t.by_exp_mac frame.src with
          | Some name -> (
              match experiment t name with
              | Some e ->
                  e.att_packets_out <- e.att_packets_out + 1;
                  e.att_bytes_out <-
                    e.att_bytes_out + Ipv4_packet.header_size
                    + String.length packet.Ipv4_packet.payload
              | None -> ())
          | None -> ());
          if packet.Ipv4_packet.ttl <= 1 then begin
            let icmp = icmp_ttl_exceeded t packet in
            deliver_inbound t icmp
          end
          else begin
            let packet = Ipv4_packet.decrement_ttl packet in
            let fib = Rib.Fib.Set.table t.fibs ns.info.Neighbor.id in
            match Rib.Fib.lookup fib packet.Ipv4_packet.dst with
            | None ->
                t.counters.packets_dropped <- t.counters.packets_dropped + 1
            | Some entry ->
                if Neighbor.is_alias ns.info then
                  forward_over_backbone t ~global_ip:entry.Rib.Fib.next_hop
                    packet
                else begin
                  t.counters.packets_to_neighbors <-
                    t.counters.packets_to_neighbors + 1;
                  ns.deliver packet
                end
          end)

(* Handle a frame arriving on the experiment LAN addressed to one of our
   stations (a neighbor's virtual MAC or the router itself). *)
let handle_exp_lan_frame t ~station_neighbor (frame : Eth.t) =
  match frame.ethertype with
  | Eth.Arp -> (
      match Arp.decode frame.payload with
      | Ok ({ op = Arp.Request; _ } as a) -> (
          (* Answer for the virtual IP this station owns. *)
          match Hashtbl.find_opt t.by_vip a.target_ip with
          | Some id when station_neighbor = Some id -> (
              match neighbor t id with
              | Some ns ->
                  Lan.send t.exp_lan
                    {
                      Eth.dst = a.sender_mac;
                      src = ns.info.Neighbor.virtual_mac;
                      ethertype = Eth.Arp;
                      payload =
                        Arp.encode
                          (Arp.reply ~sender_mac:ns.info.Neighbor.virtual_mac
                             ~sender_ip:a.target_ip ~target_mac:a.sender_mac
                             ~target_ip:a.sender_ip);
                    }
              | None -> ())
          | _ ->
              (* The router answers for its own primary address. *)
              if
                station_neighbor = None
                && Ipv4.equal a.target_ip t.primary_ip
              then
                Lan.send t.exp_lan
                  {
                    Eth.dst = a.sender_mac;
                    src = t.router_mac;
                    ethertype = Eth.Arp;
                    payload =
                      Arp.encode
                        (Arp.reply ~sender_mac:t.router_mac
                           ~sender_ip:t.primary_ip ~target_mac:a.sender_mac
                           ~target_ip:a.sender_ip);
                  })
      | Ok _ | Error _ -> ())
  | Eth.Ipv4 -> (
      match station_neighbor with
      | Some id -> forward_experiment_frame t ~neighbor_id:id frame
      | None -> (
          (* Addressed to the router itself: experiment-to-experiment or
             diagnostic traffic; route it like inbound. *)
          match Ipv4_packet.decode frame.payload with
          | Ok packet -> deliver_inbound t packet
          | Error _ -> ()))
  | Eth.Ipv6 | Eth.Other _ -> ()

let () = exp_lan_frame_handler := handle_exp_lan_frame

(* -- wiring: neighbors, experiments, backbone, mesh ------------------------- *)

let session_capabilities ?(add_path = false) t =
  let base =
    [
      Capability.Multiprotocol
        { afi = Capability.afi_ipv4; safi = Capability.safi_unicast };
      Capability.Multiprotocol
        { afi = Capability.afi_ipv6; safi = Capability.safi_unicast };
      Capability.As4 t.asn;
    ]
  in
  if add_path then
    base
    @ [
        Capability.Add_path
          [
            ( Capability.afi_ipv4,
              Capability.safi_unicast,
              Capability.Send_receive );
          ];
      ]
  else base

(* Register a real BGP neighbor. Returns (neighbor id, session pair); the
   caller drives the remote (active) side of the pair. *)
let add_neighbor t ~asn ~ip ~kind ~remote_id ?(latency = 0.002)
    ?(deliver = fun _ -> ()) () =
  let id = t.next_neighbor_id in
  t.next_neighbor_id <- t.next_neighbor_id + 1;
  let local = Addr_pool.allocate t.local_pool (Printf.sprintf "neighbor:%d" id) in
  let global =
    Addr_pool.allocate t.global_pool
      (Printf.sprintf "%s/neighbor:%d" t.name id)
  in
  let info =
    {
      Neighbor.id;
      asn;
      ip;
      kind;
      virtual_ip = local.Addr_pool.ip;
      virtual_mac = local.Addr_pool.mac;
      global_ip = Some global.Addr_pool.ip;
    }
  in
  let config_router =
    Session.config ~local_asn:t.asn ~local_id:t.router_id
      ~capabilities:(session_capabilities t) ()
  in
  let config_remote =
    Session.config ~local_asn:asn ~local_id:remote_id
      ~capabilities:
        [
          Capability.Multiprotocol
            { afi = Capability.afi_ipv4; safi = Capability.safi_unicast };
          Capability.As4 asn;
        ]
      ()
  in
  let pair =
    Sim.Bgp_wire.make t.engine ~latency ~config_active:config_remote
      ~config_passive:config_router ()
  in
  let ns =
    { info; rib_in = Rib.Table.create (); session = Some pair.Sim.Bgp_wire.passive; deliver; export_id = global.Addr_pool.index }
  in
  Hashtbl.replace t.neighbors id ns;
  Hashtbl.replace t.by_vmac info.Neighbor.virtual_mac id;
  Hashtbl.replace t.by_vip info.Neighbor.virtual_ip id;
  Hashtbl.replace t.by_global_ip global.Addr_pool.ip id;
  (* If the backbone is already attached, expose the new neighbor there. *)
  (match t.bb with
  | Some bb ->
      register_global_station t bb.Arp_client.lan ~g:global.Addr_pool.ip
        ~receive:(backbone_station_for_neighbor t id)
  | None -> ());
  (* The neighbor's virtual MAC is a station on the experiment LAN; frames
     sent to it are routed through the neighbor's table. *)
  Lan.attach t.exp_lan info.Neighbor.virtual_mac
    (handle_exp_lan_frame t ~station_neighbor:(Some id));
  Session.set_handlers pair.Sim.Bgp_wire.passive
    {
      Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update = (fun u -> process_neighbor_update t ~neighbor_id:id u);
      on_established =
        (fun () -> log t "neighbor %d (as%a) established" id Asn.pp asn);
      on_down =
        (fun reason ->
          log t "neighbor %d down: %s" id reason;
          let changes = Rib.Table.drop_peer ns.rib_in ~peer_ip:ip in
          Rib.Fib.clear (Rib.Fib.Set.table t.fibs id);
          List.iter
            (function
              | Rib.Table.Best_changed (prefix, None) ->
                  export_withdraw_to_experiments t ns prefix;
                  export_withdraw_to_mesh t ns prefix
              | _ -> ())
            changes);
    };
  (id, pair)

let set_neighbor_deliver t ~neighbor_id deliver =
  match neighbor t neighbor_id with
  | Some ns -> ns.deliver <- deliver
  | None -> invalid_arg "Router.set_neighbor_deliver"

(* Attach this router to the backbone segment shared by all PoPs. *)
let attach_backbone t lan =
  let bb_mac = Mac.local ~pool:0xbb (Hashtbl.hash t.name land 0xffffff) in
  let bb = Arp_client.attach lan ~mac:bb_mac ~ips:[] in
  Arp_client.set_ip_handler bb (fun ~src_mac:_ packet ->
      (* Traffic to one of our neighbors' global MACs or to a local
         experiment arrives here. *)
      deliver_inbound t packet);
  t.bb <- Some bb;
  (* Answer ARP for the global IPs of our local neighbors and deliver
     frames addressed to them straight to the neighbor. *)
  Hashtbl.iter
    (fun g id ->
      register_global_station t lan ~g
        ~receive:(backbone_station_for_neighbor t id))
    t.by_global_ip;
  (* Local experiments also have global identities on the backbone. *)
  Hashtbl.iter
    (fun _ e ->
      register_global_station t lan ~g:e.g_ip ~receive:(deliver_inbound t))
    t.experiments


(* Establish the backbone BGP mesh session toward another PoP's router.
   Call once per unordered pair; [Bgp_wire.start] is invoked internally. *)
let connect_mesh t other ?(latency = 0.02) () =
  let config a =
    Session.config ~local_asn:a.asn ~local_id:a.router_id ~hold_time:180
      ~capabilities:(session_capabilities ~add_path:true a) ()
  in
  let pair =
    Sim.Bgp_wire.make t.engine ~latency ~config_active:(config t)
      ~config_passive:(config other) ()
  in
  let install self peer_name session =
    let mp = { pop_name = peer_name; mesh_session = session } in
    self.mesh <- mp :: self.mesh;
    Session.set_handlers session
      {
        Session.on_route_refresh = (fun ~afi:_ ~safi:_ -> ());
      on_update = (fun u -> process_mesh_update self ~pop:peer_name u);
        on_established =
          (fun () ->
            log self "mesh to %s established" peer_name;
            (* Sync: all neighbor-learned routes plus local experiment
               announcements. *)
            List.iter
              (fun ns ->
                if not (Neighbor.is_alias ns.info) then
                  Rib.Table.iter_routes
                    (fun (r : Rib.Route.t) ->
                      match ns.info.Neighbor.global_ip with
                      | Some g ->
                          Session.send_update session
                            (Msg.update
                               ~attrs:(Attr.with_next_hop g r.attrs)
                               ~announced:
                                 [
                                   Msg.nlri ~path_id:ns.info.Neighbor.id
                                     r.prefix;
                                 ]
                               ())
                      | None -> ())
                    ns.rib_in)
              (neighbor_states self);
            Hashtbl.iter
              (fun _ e ->
                Hashtbl.iter
                  (fun prefix vs ->
                    List.iter
                      (fun v ->
                        let ctl_asn = control_asn self in
                        let attrs =
                          v.v_attrs
                          |> Attr.with_next_hop e.g_ip
                          |> Attr.add_community
                               (Export_control.experiment_marker ~ctl_asn)
                        in
                        Session.send_update session
                          (Msg.update ~attrs
                             ~announced:
                               [
                                 Msg.nlri
                                   ~path_id:(mesh_path_id e v.v_path_id)
                                   prefix;
                               ]
                             ()))
                      !vs)
                  e.routes)
              self.experiments);
        on_down = (fun reason -> log self "mesh to %s down: %s" peer_name reason);
      }
  in
  install t other.name pair.Sim.Bgp_wire.active;
  install other t.name pair.Sim.Bgp_wire.passive;
  Sim.Bgp_wire.start pair;
  pair

(* Connect an experiment: BGP over a VPN-like link, data over the
   experiment LAN. Returns the client-side session (ADD-PATH capable);
   start it with [Bgp_wire.start] via the returned pair. *)
let connect_experiment t ~grant ~mac ?(latency = 0.03) () =
  let exp_name = grant.Control_enforcer.name in
  if Hashtbl.mem t.experiments exp_name then
    invalid_arg "Router.connect_experiment: already connected";
  let g =
    Addr_pool.allocate t.global_pool
      (Printf.sprintf "%s/experiment:%s" t.name exp_name)
  in
  let client_asn =
    match grant.Control_enforcer.asns with
    | a :: _ -> a
    | [] -> invalid_arg "Router.connect_experiment: grant has no ASN"
  in
  let client_id =
    match grant.Control_enforcer.prefixes with
    | p :: _ -> Prefix.host p 1
    | [] -> Ipv4.of_string_exn "192.0.2.1"
  in
  let config_router =
    Session.config ~local_asn:t.asn ~local_id:t.router_id
      ~capabilities:(session_capabilities ~add_path:true t) ()
  in
  let config_client =
    Session.config ~local_asn:client_asn ~local_id:client_id
      ~capabilities:
        [
          Capability.Multiprotocol
            { afi = Capability.afi_ipv4; safi = Capability.safi_unicast };
          Capability.As4 client_asn;
          Capability.Add_path
            [
              ( Capability.afi_ipv4,
                Capability.safi_unicast,
                Capability.Send_receive );
            ];
        ]
      ()
  in
  let pair =
    Sim.Bgp_wire.make t.engine ~latency ~config_active:config_client
      ~config_passive:config_router ()
  in
  let e =
    {
      grant;
      exp_session = pair.Sim.Bgp_wire.passive;
      exp_mac = mac;
      g_ip = g.Addr_pool.ip;
      g_idx = g.Addr_pool.index;
      routes = Hashtbl.create 8;
      routes_v6 = Hashtbl.create 4;
      exp_synced = false;
      att_packets_out = 0;
      att_bytes_out = 0;
      att_packets_in = 0;
    }
  in
  Hashtbl.replace t.experiments exp_name e;
  Hashtbl.replace t.by_exp_mac mac exp_name;
  (match t.bb with
  | Some bb ->
      register_global_station t bb.Arp_client.lan ~g:e.g_ip
        ~receive:(deliver_inbound t)
  | None -> ());
  Session.set_handlers pair.Sim.Bgp_wire.passive
    {
      Session.on_route_refresh =
        (fun ~afi:_ ~safi:_ ->
          (* RFC 2918: the experiment asked for the table again. *)
          log t "route refresh from experiment %s" exp_name;
          e.exp_synced <- false;
          sync_experiment t e);
      on_update =
        (fun u -> ignore (process_experiment_update t ~experiment:exp_name u));
      on_established =
        (fun () ->
          log t "experiment %s established" exp_name;
          sync_experiment t e);
      on_down =
        (fun reason ->
          log t "experiment %s down: %s" exp_name reason;
          (* Withdraw everything the experiment announced: clear its state
             first so the re-export pass sees no live variants. *)
          let announced =
            Hashtbl.fold
              (fun prefix vs acc -> (prefix, !vs) :: acc)
              e.routes []
          in
          Hashtbl.reset e.routes;
          List.iter
            (fun (prefix, vs) ->
              List.iter
                (fun v -> export_exp_withdraw_to_mesh t e prefix v.v_path_id)
                vs;
              t.owner_trie <- Ptrie.V4.remove prefix t.owner_trie;
              reexport_prefix t prefix)
            announced;
          e.exp_synced <- false);
    };
  pair

(* The router's own station on the experiment LAN (answers for the primary
   address, receives router-addressed traffic). Call after creation. *)
let activate t =
  Lan.attach t.exp_lan t.router_mac
    (handle_exp_lan_frame t ~station_neighbor:None)

(* -- inspection -------------------------------------------------------------- *)

(* Total routes across all per-neighbor RIBs. *)
let route_count t =
  List.fold_left
    (fun acc ns -> acc + Rib.Table.route_count ns.rib_in)
    0 (neighbor_states t)

let fib_entry_count t = Rib.Fib.Set.total_entries t.fibs

(* Memory footprint (bytes) of control-plane state (RIBs). *)
let control_plane_bytes t =
  let words =
    List.fold_left
      (fun acc ns -> acc + Obj.reachable_words (Obj.repr ns.rib_in))
      0 (neighbor_states t)
  in
  words * (Sys.word_size / 8)

(* Memory footprint (bytes) of per-neighbor FIBs. *)
let data_plane_bytes t = Rib.Fib.Set.memory_bytes t.fibs

(* PlanetFlow-style attribution (§3.1): per-experiment traffic totals as
   (experiment, packets out, bytes out, packets in). *)
let attribution t =
  Hashtbl.fold
    (fun name e acc ->
      (name, e.att_packets_out, e.att_bytes_out, e.att_packets_in) :: acc)
    t.experiments []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)

(* The experiment owning [ip], when it is local experiment space. *)
let owner_of t ip =
  match Ptrie.lookup_v4 ip t.owner_trie with
  | Some (_, Local_exp name) -> Some name
  | Some (_, Remote_exp _) | None -> None

(* The experiment whose *allocation* covers [ip] (connected at this PoP),
   regardless of whether it has announced yet — the basis for data-plane
   source validation. *)
let allocation_owner_of t ip =
  Hashtbl.fold
    (fun name e acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if Control_enforcer.owns_address e.grant ip then Some name else None)
    t.experiments None

(* The platform-global export id of a neighbor (the value used in
   export-control community tags). *)
let export_id t ~neighbor_id =
  match neighbor t neighbor_id with
  | Some ns -> ns.export_id
  | None -> invalid_arg "Router.export_id: unknown neighbor"

let neighbor_routes t ~neighbor_id =
  match neighbor t neighbor_id with
  | Some ns -> Rib.Table.to_list ns.rib_in
  | None -> []
