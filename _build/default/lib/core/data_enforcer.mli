(** The data-plane enforcement engine (paper §3.3): the eBPF-analog filter
    chain inspecting every experiment packet before it reaches the
    Internet. Filters can be stateless or stateful (keeping their own
    state, like an eBPF map). The built-ins mirror PEERING's policies:
    source validation (no spoofing, no transiting foreign traffic) and
    per-PoP/per-neighbor traffic shaping (§4.7). *)

open Netcore

(** One filter's verdict on one packet. *)
type verdict =
  | Allow
  | Block of string
  | Transform of Ipv4_packet.t  (** rewrite, then continue down the chain *)

type meta = { ingress : string }
(** Where the packet entered the platform (e.g. an experiment name), for
    attribution. *)

type filter = {
  name : string;
  apply : now:float -> meta:meta -> Ipv4_packet.t -> verdict;
}

type t

val create : ?trace:Sim.Trace.t -> unit -> t

val add_filter : t -> filter -> unit
(** Appended: filters run in insertion order. *)

val filters : t -> string list

val stats : t -> int * int
(** [(allowed, blocked)]. *)

val source_validation : owner_of:(Ipv4.t -> string option) -> unit -> filter
(** Anti-spoofing: the source address must belong to the sending
    experiment ([owner_of] maps addresses to allocations, the ingress
    metadata names the sender). *)

val shaper :
  name:string ->
  rate:float ->
  burst:float ->
  key_of:(Ipv4_packet.t -> string) ->
  unit ->
  filter
(** Token-bucket shaping, bytes/second with a burst allowance, one bucket
    per classifier key (PoP, neighbor, experiment...). *)

val ttl_guard : ?min_ttl:int -> unit -> filter

(** The chain's decision, carrying the (possibly rewritten) packet. *)
type decision = Allowed of Ipv4_packet.t | Blocked of string

val check : t -> now:float -> meta:meta -> Ipv4_packet.t -> decision
