(* A vBGP router's view of one BGP neighbor: its real identity, the virtual
   (IP, MAC) pair experiments use to select it, and its platform-global IP
   used across the backbone (paper §§3.2 and 4.4). *)

open Netcore
open Bgp

type kind =
  | Transit
  | Peer
  | Route_server
  | Backbone_alias of { remote_pop : string }
      (** a pseudo-neighbor standing in for a neighbor at another PoP,
          reachable across the backbone *)

let kind_to_string = function
  | Transit -> "transit"
  | Peer -> "peer"
  | Route_server -> "route-server"
  | Backbone_alias { remote_pop } -> Printf.sprintf "backbone:%s" remote_pop

type t = {
  id : int;  (** table id; doubles as the ADD-PATH path id for its routes *)
  asn : Asn.t;
  ip : Ipv4.t;  (** the neighbor's real interface address *)
  kind : kind;
  virtual_ip : Ipv4.t;  (** local-pool alias exposed to experiments *)
  virtual_mac : Mac.t;
  global_ip : Ipv4.t option;  (** shared-pool identity for backbone use *)
}

let is_alias n =
  match n.kind with Backbone_alias _ -> true | _ -> false

let pp ppf n =
  Fmt.pf ppf "neighbor#%d as%a %a (%s) via %a/%a" n.id Asn.pp n.asn Ipv4.pp
    n.ip (kind_to_string n.kind) Ipv4.pp n.virtual_ip Mac.pp n.virtual_mac
