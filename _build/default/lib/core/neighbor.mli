(** A vBGP router's view of one BGP neighbor: real identity, the virtual
    (IP, MAC) pair experiments use to select it, and its platform-global IP
    for backbone use (paper §§3.2, 4.4). *)

open Netcore
open Bgp

type kind =
  | Transit
  | Peer
  | Route_server
  | Backbone_alias of { remote_pop : string }
      (** a pseudo-neighbor standing in for a neighbor at another PoP,
          reachable across the backbone *)

val kind_to_string : kind -> string

type t = {
  id : int;  (** table id; doubles as the ADD-PATH path id for its routes *)
  asn : Asn.t;
  ip : Ipv4.t;  (** the neighbor's real interface address *)
  kind : kind;
  virtual_ip : Ipv4.t;  (** local-pool alias exposed to experiments *)
  virtual_mac : Mac.t;
  global_ip : Ipv4.t option;  (** shared-pool identity for backbone use *)
}

val is_alias : t -> bool
val pp : Format.formatter -> t -> unit
