lib/core/control_enforcer.ml: Asn Aspath Attr Bgp Community Experiment_caps Fmt Format Ipv6 List Msg Netcore Prefix Prefix_v6 Rate_limiter Sim
