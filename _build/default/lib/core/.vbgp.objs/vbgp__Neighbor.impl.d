lib/core/neighbor.ml: Asn Bgp Fmt Ipv4 Mac Netcore Printf
