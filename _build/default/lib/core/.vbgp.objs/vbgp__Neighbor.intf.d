lib/core/neighbor.mli: Asn Bgp Format Ipv4 Mac Netcore
