lib/core/experiment_caps.ml: Fmt
