lib/core/export_control.ml: Bgp Community List
