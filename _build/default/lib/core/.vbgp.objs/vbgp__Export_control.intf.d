lib/core/export_control.mli: Bgp Community
