lib/core/arp_client.mli: Hashtbl Ipv4 Ipv4_packet Lan Mac Netcore Sim
