lib/core/addr_pool.mli: Ipv4 Mac Netcore Prefix
