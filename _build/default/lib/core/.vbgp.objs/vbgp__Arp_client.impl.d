lib/core/arp_client.ml: Arp Eth Hashtbl Ipv4 Ipv4_packet Lan List Mac Netcore Sim
