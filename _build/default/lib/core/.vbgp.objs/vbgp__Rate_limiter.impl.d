lib/core/rate_limiter.ml: Hashtbl
