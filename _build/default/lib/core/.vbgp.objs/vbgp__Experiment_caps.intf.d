lib/core/experiment_caps.mli: Format
