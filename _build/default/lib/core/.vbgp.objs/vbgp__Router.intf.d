lib/core/router.mli: Addr_pool Asn Bgp Bgp_wire Control_enforcer Data_enforcer Engine Eth Ipv4 Ipv4_packet Lan Mac Msg Neighbor Netcore Prefix Rib Session Sim Trace
