lib/core/rate_limiter.mli:
