lib/core/data_enforcer.mli: Ipv4 Ipv4_packet Netcore Sim
