lib/core/control_enforcer.mli: Asn Attr Bgp Community Experiment_caps Ipv4 Msg Netcore Prefix Prefix_v6 Rate_limiter Sim
