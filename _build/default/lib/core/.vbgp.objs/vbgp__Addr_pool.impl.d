lib/core/addr_pool.ml: Hashtbl Ipv4 Mac Netcore Prefix
