lib/core/data_enforcer.ml: Float Fmt Hashtbl Ipv4 Ipv4_packet List Netcore Sim String
