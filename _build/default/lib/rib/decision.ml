(* The BGP decision process (RFC 4271 §9.1.2.2): the total order a router
   uses to pick its single best route per prefix. vBGP deliberately does
   *not* run this on behalf of experiments — each experiment runs its own —
   but the simulated Internet's speakers and the experiments' own routers
   both need it. *)

open Netcore
open Bgp

type config = {
  always_compare_med : bool;
      (** Compare MED even across different neighbor ASes. *)
  prefer_oldest : bool;
      (** Route-age tiebreak before router id (common vendor default). *)
  igp_metric : Ipv4.t option -> int;
      (** Metric to reach a next hop; constant 0 when there is no IGP. *)
}

let default_config =
  { always_compare_med = false; prefer_oldest = false; igp_metric = (fun _ -> 0) }

(* [compare cfg a b] < 0 when [a] is preferred over [b]. *)
let compare ?(config = default_config) a b =
  let steps =
    [
      (* 1. Highest local preference. *)
      (fun () -> Int.compare (Route.local_pref b) (Route.local_pref a));
      (* 2. Shortest AS path. *)
      (fun () ->
        Int.compare
          (Aspath.length (Route.as_path a))
          (Aspath.length (Route.as_path b)));
      (* 3. Lowest origin (IGP < EGP < INCOMPLETE). *)
      (fun () ->
        Int.compare
          (Attr.origin_to_int (Route.origin a))
          (Attr.origin_to_int (Route.origin b)));
      (* 4. Lowest MED, only among routes from the same neighbor AS. *)
      (fun () ->
        if
          config.always_compare_med
          || Asn.equal (Route.neighbor_asn a) (Route.neighbor_asn b)
        then Int.compare (Route.med a) (Route.med b)
        else 0);
      (* 5. eBGP-learned over iBGP-learned. *)
      (fun () ->
        Bool.compare b.Route.source.ebgp a.Route.source.ebgp);
      (* 6. Lowest IGP metric to the next hop. *)
      (fun () ->
        Int.compare
          (config.igp_metric (Route.next_hop a))
          (config.igp_metric (Route.next_hop b)));
      (* 7. Oldest route, when enabled. *)
      (fun () ->
        if config.prefer_oldest then
          Float.compare a.Route.learned_at b.Route.learned_at
        else 0);
      (* 8. Lowest peer BGP identifier. *)
      (fun () ->
        Ipv4.compare a.Route.source.peer_id b.Route.source.peer_id);
      (* 9. Lowest peer address. *)
      (fun () ->
        Ipv4.compare a.Route.source.peer_ip b.Route.source.peer_ip);
      (* 10. Path id as the final total-order tiebreak. *)
      (fun () ->
        Stdlib.compare a.Route.path_id b.Route.path_id);
    ]
  in
  let rec go = function
    | [] -> 0
    | step :: rest -> ( match step () with 0 -> go rest | c -> c)
  in
  go steps

let best ?config routes =
  match routes with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun acc r -> if compare ?config r acc < 0 then r else acc)
           first rest)

(* Candidates ordered best-first; used by looking-glass style inspection. *)
let rank ?config routes = List.sort (compare ?config) routes
