(** A routing table: prefix → candidate routes, with the per-prefix best
    maintained incrementally. Serves as Adj-RIB-In (one per peer), Loc-RIB,
    and (with one candidate per prefix) Adj-RIB-Out. *)

open Netcore

type entry = { candidates : Route.t list; best : Route.t option }

(** The observable effect of a table operation. *)
type change =
  | Best_changed of Prefix.t * Route.t option
      (** the best route changed ([None] = prefix now unreachable) *)
  | Unchanged

type t

val create : ?decision:Decision.config -> unit -> t

val route_count : t -> int
(** Total candidates across all prefixes. *)

val prefix_count : t -> int

val entry : t -> Prefix.t -> entry option
val candidates : t -> Prefix.t -> Route.t list
val best : t -> Prefix.t -> Route.t option

val update : t -> Route.t -> change
(** Insert, replacing any candidate with the same (peer, path id). *)

val withdraw :
  t -> prefix:Prefix.t -> peer_ip:Ipv4.t -> path_id:int option -> change

val drop_peer : t -> peer_ip:Ipv4.t -> change list
(** Remove every route from [peer_ip] (session teardown); returns the
    best-path changes produced. *)

val lookup : t -> Ipv4.t -> Route.t option
(** Longest-prefix match over best routes. *)

val lookup_all : t -> Ipv4.t -> Route.t list
(** Every candidate covering the address, best-first (looking-glass
    queries). *)

val fold : (Prefix.t -> entry -> 'acc -> 'acc) -> t -> 'acc -> 'acc
val iter_best : (Prefix.t -> Route.t -> unit) -> t -> unit
val iter_routes : (Route.t -> unit) -> t -> unit
val to_list : t -> Route.t list
