lib/rib/fib.ml: Hashtbl Ipv4 Netcore Obj Ptrie Sys
