lib/rib/decision.ml: Asn Aspath Attr Bgp Bool Float Int Ipv4 List Netcore Route Stdlib
