lib/rib/fib.mli: Ipv4 Netcore Prefix
