lib/rib/table.ml: Bgp Decision Ipv4 List Netcore Prefix Ptrie Route
