lib/rib/table.mli: Decision Ipv4 Netcore Prefix Route
