lib/rib/route.mli: Asn Aspath Attr Bgp Community Format Ipv4 Netcore Prefix
