lib/rib/route.ml: Asn Aspath Attr Bgp Fmt Ipv4 Netcore Prefix Printf
