lib/rib/decision.mli: Ipv4 Netcore Route
