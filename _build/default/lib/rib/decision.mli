(** The BGP decision process (RFC 4271 §9.1.2.2): the total order a router
    uses to pick its single best route per prefix.

    vBGP deliberately does {e not} run this on behalf of experiments —
    each experiment runs its own — but the simulated Internet's speakers
    and the experiments' routers need it. *)

open Netcore

type config = {
  always_compare_med : bool;
      (** compare MED even across different neighbor ASes *)
  prefer_oldest : bool;
      (** route-age tiebreak before router id (common vendor default) *)
  igp_metric : Ipv4.t option -> int;
      (** metric to reach a next hop; constant 0 without an IGP *)
}

val default_config : config

val compare : ?config:config -> Route.t -> Route.t -> int
(** [compare a b < 0] when [a] is preferred. The order: local preference,
    AS-path length, origin, MED (same neighbor AS unless configured),
    eBGP over iBGP, IGP metric, optional age, peer BGP id, peer address,
    path id. Total. *)

val best : ?config:config -> Route.t list -> Route.t option
(** The minimum under {!compare}; [None] on the empty list. *)

val rank : ?config:config -> Route.t list -> Route.t list
(** Candidates ordered best-first. *)
