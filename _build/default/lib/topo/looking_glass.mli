(** Looking-glass services and automated filter troubleshooting.

    Appendix A of the paper: announcements sometimes fail to propagate
    because a remote network silently filters them, and looking glasses —
    restricted read-only views into a subset of networks — cannot even
    distinguish "A does not export to B" from "B filters A". The paper
    names automated troubleshooting as future work; this module implements
    it: compare expected propagation against looking-glass observations and
    emit a ranked candidate set of filtered edges. *)

open Bgp

type query_result =
  | Route of Aspath.t  (** the LG's AS holds a route with this path *)
  | No_route  (** the LG answers but has no route *)
  | No_looking_glass  (** that network hosts no looking glass *)

type t

val create :
  ?coverage:float ->
  ?seed:int ->
  ?filters:(Asn.t * Asn.t) list ->
  As_graph.t ->
  origin:Asn.t ->
  t
(** Deploy looking glasses in [coverage] of ASes over a world where
    [filters] silently drop the origin's announcement. *)

val hosts : t -> Asn.t list
val host_count : t -> int

val show_route : t -> at:Asn.t -> query_result
(** The restricted query a real looking glass answers. *)

type suspect = { from_as : Asn.t; to_as : Asn.t; implicated_by : int }
(** A candidate filtered edge and how many observations implicate it. *)

val localize : t -> origin:Asn.t -> suspect list
(** The troubleshooting algorithm, most-implicated first: for every LG
    lacking the route, every edge of its expected path up to the nearest
    LG demonstrably holding the route is a candidate. *)

val covers : suspect list -> filters:(Asn.t * Asn.t) list -> bool
(** Did localization keep every true filter among its suspects? *)

val pp_suspect : Format.formatter -> suspect -> unit
