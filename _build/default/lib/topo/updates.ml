(* BGP churn workload generation. Figure 6b and the AMS-IX operational
   numbers (§6) are driven by sustained streams of announce/withdraw events;
   this module synthesizes such streams with Poisson inter-arrivals and
   occasional bursts (path exploration after a failure looks like a burst of
   updates for many prefixes at once). *)

open Netcore
open Bgp

type kind = Announce | Withdraw

type event = {
  time : float;
  peer_index : int;  (** which neighbor emits the update *)
  prefix : Prefix.t;
  kind : kind;
  as_path : Aspath.t;
}

type params = {
  rate : float;  (** average updates per second *)
  duration : float;  (** seconds of workload *)
  burst_fraction : float;  (** fraction of events arriving in bursts *)
  burst_size : int;
  withdraw_fraction : float;
  peers : int;
  seed : int;
}

let default_params =
  {
    rate = 100.;
    duration = 10.;
    burst_fraction = 0.2;
    burst_size = 50;
    withdraw_fraction = 0.2;
    peers = 4;
    seed = 11;
  }

(* Exponential inter-arrival sample. *)
let exponential rng rate = -.log (1. -. Random.State.float rng 1.) /. rate

(* Generate a churn trace over [prefixes]; each event re-announces a prefix
   with a jittered AS path (new path exploration) or withdraws it. *)
let generate ?(params = default_params) ~prefixes ~origin_asn () =
  if prefixes = [] then invalid_arg "Updates.generate: no prefixes";
  let prefixes = Array.of_list prefixes in
  let rng = Random.State.make [| params.seed |] in
  let events = ref [] in
  let count = ref 0 in
  let emit time =
    let prefix = prefixes.(Random.State.int rng (Array.length prefixes)) in
    let peer_index = Random.State.int rng (max 1 params.peers) in
    let kind =
      if Random.State.float rng 1.0 < params.withdraw_fraction then Withdraw
      else Announce
    in
    let as_path =
      (* 2-5 hops ending at the origin, with random intermediate ASes. *)
      let hops = 1 + Random.State.int rng 4 in
      let intermediates =
        List.init hops (fun _ -> Asn.of_int (1000 + Random.State.int rng 9000))
      in
      Aspath.of_asns (intermediates @ [ origin_asn ])
    in
    events := { time; peer_index; prefix; kind; as_path } :: !events;
    incr count
  in
  let time = ref 0. in
  while !time < params.duration do
    if Random.State.float rng 1.0 < params.burst_fraction then begin
      (* A burst: [burst_size] events at (nearly) the same instant. *)
      for i = 0 to params.burst_size - 1 do
        emit (!time +. (float_of_int i *. 1e-6))
      done;
      (* Spacing so the long-run average still matches [rate]. *)
      time := !time +. exponential rng (params.rate /. float_of_int params.burst_size)
    end
    else begin
      emit !time;
      time := !time +. exponential rng params.rate
    end
  done;
  List.rev !events

(* Convert a workload event into the UPDATE message a neighbor would send. *)
let to_update ~next_hop (e : event) : Msg.update =
  match e.kind with
  | Withdraw ->
      Msg.update ~withdrawn:[ Msg.nlri e.prefix ] ()
  | Announce ->
      Msg.update
        ~attrs:(Bgp.Attr.origin_attrs ~as_path:e.as_path ~next_hop ())
        ~announced:[ Msg.nlri e.prefix ] ()

(* Observed rate statistics of a trace: (average, p99) updates/second over
   one-second windows — the form §6 reports for AMS-IX. *)
let rate_stats events =
  match events with
  | [] -> (0., 0.)
  | _ ->
      let duration =
        List.fold_left (fun acc e -> Float.max acc e.time) 0. events +. 1.
      in
      let buckets = Array.make (int_of_float duration + 1) 0 in
      List.iter
        (fun e ->
          let i = int_of_float e.time in
          if i >= 0 && i < Array.length buckets then
            buckets.(i) <- buckets.(i) + 1)
        events;
      let total = List.length events in
      let avg = float_of_int total /. duration in
      let sorted = Array.copy buckets in
      Array.sort Int.compare sorted;
      let p99 = sorted.(min (Array.length sorted - 1)
                         (int_of_float (0.99 *. float_of_int (Array.length sorted))))
      in
      (avg, float_of_int p99)
