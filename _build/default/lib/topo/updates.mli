(** BGP churn workload generation. Figure 6b and the AMS-IX operational
    numbers (§6) are driven by sustained announce/withdraw streams; this
    module synthesizes them with Poisson inter-arrivals and
    path-exploration-style bursts. *)

open Netcore
open Bgp

type kind = Announce | Withdraw

type event = {
  time : float;
  peer_index : int;  (** which neighbor emits the update *)
  prefix : Prefix.t;
  kind : kind;
  as_path : Aspath.t;
}

type params = {
  rate : float;  (** average updates per second *)
  duration : float;  (** seconds of workload *)
  burst_fraction : float;  (** fraction of events arriving in bursts *)
  burst_size : int;
  withdraw_fraction : float;
  peers : int;
  seed : int;
}

val default_params : params

val generate :
  ?params:params -> prefixes:Prefix.t list -> origin_asn:Asn.t -> unit -> event list
(** A time-ordered trace, deterministic per seed. *)

val to_update : next_hop:Ipv4.t -> event -> Msg.update
(** The UPDATE message a neighbor would send for this event. *)

val rate_stats : event list -> float * float
(** [(average, p99)] updates/second over one-second windows — the form §6
    reports for AMS-IX. *)
