(* Looking-glass services and automated filter troubleshooting.

   Appendix A of the paper describes PEERING's hardest operational problem:
   announcements sometimes fail to propagate globally because some remote
   network has a misconfigured or out-of-date route filter. The only
   diagnosis tools are looking glasses — restricted read-only views into a
   subset of networks — and even when two adjacent networks both host one,
   an operator cannot distinguish "A is not exporting to B" from "B is
   filtering what A sends" (the paper resorts to e-mailing providers). The
   paper names automated filter troubleshooting as future work; this module
   implements it over the synthetic Internet:

   - {!create} places looking glasses in a fraction of ASes;
   - {!show_route} answers the restricted query a real LG would;
   - {!localize} runs the troubleshooting algorithm: compare expected
     propagation (no filters) with LG observations, and emit a ranked list
     of candidate directed edges that must contain every actual filter. *)

open Bgp

type query_result =
  | Route of Aspath.t  (** the LG's AS holds a route with this path *)
  | No_route  (** the LG answers, but has no route for the prefix *)
  | No_looking_glass  (** that network does not host a looking glass *)

type t = {
  graph : As_graph.t;
  lg_hosts : (Asn.t, unit) Hashtbl.t;
  actual : Internet.propagation;
      (** ground-truth propagation incl. the (unknown) filters *)
}

(* Deploy looking glasses in [coverage] of ASes (deterministic per seed),
   over a world where [filters] silently drop the origin's announcement. *)
let create ?(coverage = 0.3) ?(seed = 17) ?(filters = []) graph ~origin =
  let rng = Random.State.make [| seed |] in
  let lg_hosts = Hashtbl.create 64 in
  List.iter
    (fun asn ->
      if Random.State.float rng 1.0 < coverage then
        Hashtbl.replace lg_hosts asn ())
    (List.sort Asn.compare (As_graph.asns graph));
  { graph; lg_hosts; actual = Internet.propagate graph ~origin ~filters }

let hosts t = Hashtbl.fold (fun a () acc -> a :: acc) t.lg_hosts []
let host_count t = Hashtbl.length t.lg_hosts

(* The restricted query: what does network [at]'s looking glass say about
   the origin's prefix? *)
let show_route t ~at =
  if not (Hashtbl.mem t.lg_hosts at) then No_looking_glass
  else
    match Internet.path t.actual at with
    | Some asns -> Route (Aspath.of_asns asns)
    | None -> No_route

(* A candidate filter: the directed edge the route failed to cross, with
   the number of independent observations implicating it. *)
type suspect = { from_as : Asn.t; to_as : Asn.t; implicated_by : int }

(* Localize filters: for every LG that lacks the route, walk the *expected*
   path (propagation without filters) from that AS toward the origin; the
   filter must sit on the segment between the AS and the nearest expected
   upstream that demonstrably has the route. Edges implicated by more
   observations rank higher; the true filtered edges are always in the
   returned set when an LG observes their effect. *)
let localize t ~origin =
  let expected = Internet.propagate t.graph ~origin in
  let votes : (Asn.t * Asn.t, int) Hashtbl.t = Hashtbl.create 16 in
  let observed_has asn =
    match show_route t ~at:asn with
    | Route _ -> Some true
    | No_route -> Some false
    | No_looking_glass -> None
  in
  List.iter
    (fun lg ->
      match (observed_has lg, Internet.path expected lg) with
      | Some false, Some expected_path ->
          (* The LG should have the route but does not: some edge on the
             expected path dropped it. Walk up the path until evidence of
             the route (an LG that has it); every edge in between is a
             candidate. *)
          let rec walk = function
            | down :: up :: rest ->
                let edge = (up, down) in
                Hashtbl.replace votes edge
                  (1 + Option.value ~default:0 (Hashtbl.find_opt votes edge));
                if observed_has up = Some true then ()
                else walk (up :: rest)
            | _ -> ()
          in
          walk expected_path
      | _ -> ())
    (List.sort Asn.compare (hosts t));
  Hashtbl.fold
    (fun (from_as, to_as) implicated_by acc ->
      { from_as; to_as; implicated_by } :: acc)
    votes []
  |> List.sort (fun a b ->
         match Int.compare b.implicated_by a.implicated_by with
         | 0 -> compare (a.from_as, a.to_as) (b.from_as, b.to_as)
         | c -> c)

(* Did localization keep the true filter(s) among its suspects? *)
let covers suspects ~filters =
  List.for_all
    (fun (a, b) ->
      List.exists
        (fun s -> Asn.equal s.from_as a && Asn.equal s.to_as b)
        suspects)
    filters

let pp_suspect ppf s =
  Fmt.pf ppf "as%a -/-> as%a (implicated by %d observations)" Asn.pp s.from_as
    Asn.pp s.to_as s.implicated_by
