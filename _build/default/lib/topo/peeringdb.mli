(** A synthetic PeeringDB: per-neighbor interconnection records matching
    the deployment census of paper §4.2 (923 unique peers, their type mix,
    per-IXP bilateral/route-server splits). *)

open Bgp

type via = Bilateral | Route_server_only

type record = {
  asn : Asn.t;
  kind : As_graph.kind;
  via : via;
  ixp : string;
}

type t

val paper_footprint : (string * int * int) list
(** The paper's per-IXP rows: (IXP, peers there, bilateral sessions). *)

val paper_type_mix : (As_graph.kind * float) list
(** §4.2's unique-peer type fractions. *)

val generate : ?seed:int -> ?unique_peers:int -> ?footprint:(string * int * int) list -> unit -> t

val records : t -> record list
val unique_peers : t -> Asn.t list

val by_ixp : t -> (string * int * int) list
(** (IXP, total, bilateral) rows, as in §4.2. *)

val type_census : t -> (As_graph.kind * int * float) list
(** (kind, count, fraction) over unique peers, descending. *)
