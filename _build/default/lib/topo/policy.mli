(** Gao-Rexford routing policy: the standard model of how business
    relationships shape route selection and export on the Internet. The
    simulated Internet follows it, which is what gives PEERING experiments
    realistic visibility. *)

(** How a route was learned, in decreasing preference. *)
type route_class = From_customer | From_peer | From_provider

val class_rank : route_class -> int

val local_pref : route_class -> int
(** Conventional local-preference values (300/200/100). *)

val exports_to_customers : route_class -> bool
(** Always [true]: customers receive every route. *)

val exports_to_peers_and_providers : route_class -> bool
(** Only customer-learned routes (no valleys, no free transit). *)

val prefer : route_class * int -> route_class * int -> int
(** [(class, hops)] order: class first, then shorter. Negative = first
    preferred. *)
