lib/topo/peeringdb.ml: Array As_graph Asn Bgp Hashtbl Int List Random String
