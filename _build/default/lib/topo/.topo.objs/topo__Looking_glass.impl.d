lib/topo/looking_glass.ml: As_graph Asn Aspath Bgp Fmt Hashtbl Int Internet List Option Random
