lib/topo/as_graph.mli: Asn Bgp
