lib/topo/internet.mli: As_graph Asn Aspath Bgp Netcore Policy Prefix
