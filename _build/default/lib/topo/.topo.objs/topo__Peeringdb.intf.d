lib/topo/peeringdb.mli: As_graph Asn Bgp
