lib/topo/as_graph.ml: Asn Bgp Hashtbl List Random
