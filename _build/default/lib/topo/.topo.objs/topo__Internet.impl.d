lib/topo/internet.ml: As_graph Asn Aspath Bgp Hashtbl Int List Netcore Policy Prefix Queue Set
