lib/topo/updates.mli: Asn Aspath Bgp Ipv4 Msg Netcore Prefix
