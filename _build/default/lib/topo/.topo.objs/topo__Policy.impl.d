lib/topo/policy.ml: Int
