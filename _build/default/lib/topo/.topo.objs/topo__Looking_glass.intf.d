lib/topo/looking_glass.mli: As_graph Asn Aspath Bgp Format
