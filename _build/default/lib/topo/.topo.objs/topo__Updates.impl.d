lib/topo/updates.ml: Array Asn Aspath Bgp Float Int List Msg Netcore Prefix Random
