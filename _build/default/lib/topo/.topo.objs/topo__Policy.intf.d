lib/topo/policy.mli:
