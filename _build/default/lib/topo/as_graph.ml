(* An AS-level Internet topology with business relationships. PEERING's
   evaluation leans on properties of its real neighbors (peer-type mix,
   customer cones, path diversity, §4.2); this module generates synthetic
   topologies with the same structure: a full-mesh tier-1 clique, a transit
   hierarchy, and a stub fringe, with peering edges concentrated at IXPs. *)

open Bgp

(* Network types, mirroring the PeeringDB classification used in §4.2. *)
type kind =
  | Transit
  | Access_isp
  | Content
  | Education
  | Enterprise
  | Nonprofit
  | Route_server
  | Unclassified

let kind_to_string = function
  | Transit -> "transit"
  | Access_isp -> "access/ISP"
  | Content -> "content"
  | Education -> "education/research"
  | Enterprise -> "enterprise"
  | Nonprofit -> "non-profit"
  | Route_server -> "route server"
  | Unclassified -> "unclassified"

type node = { asn : Asn.t; kind : kind; tier : int }

type t = {
  nodes : (Asn.t, node) Hashtbl.t;
  (* adjacency: for each AS, its providers, customers and peers *)
  providers : (Asn.t, Asn.t list) Hashtbl.t;
  customers : (Asn.t, Asn.t list) Hashtbl.t;
  peers : (Asn.t, Asn.t list) Hashtbl.t;
}

let create () =
  {
    nodes = Hashtbl.create 256;
    providers = Hashtbl.create 256;
    customers = Hashtbl.create 256;
    peers = Hashtbl.create 256;
  }

let add_node t ~asn ~kind ~tier =
  if Hashtbl.mem t.nodes asn then invalid_arg "As_graph.add_node: duplicate";
  Hashtbl.replace t.nodes asn { asn; kind; tier }

let node t asn = Hashtbl.find_opt t.nodes asn
let mem t asn = Hashtbl.mem t.nodes asn

let adj tbl asn = match Hashtbl.find_opt tbl asn with Some l -> l | None -> []

let providers t asn = adj t.providers asn
let customers t asn = adj t.customers asn
let peers t asn = adj t.peers asn

let push tbl key v = Hashtbl.replace tbl key (v :: adj tbl key)

(* [add_customer t ~provider ~customer]: customer pays provider. *)
let add_customer t ~provider ~customer =
  if not (mem t provider && mem t customer) then
    invalid_arg "As_graph.add_customer: unknown AS";
  if List.exists (Asn.equal customer) (customers t provider) then ()
  else begin
    push t.customers provider customer;
    push t.providers customer provider
  end

let add_peering t a b =
  if not (mem t a && mem t b) then invalid_arg "As_graph.add_peering: unknown AS";
  if List.exists (Asn.equal b) (peers t a) then ()
  else begin
    push t.peers a b;
    push t.peers b a
  end

let asns t = Hashtbl.fold (fun asn _ acc -> asn :: acc) t.nodes []
let node_count t = Hashtbl.length t.nodes

let neighbors t asn = providers t asn @ customers t asn @ peers t asn

let edge_count t =
  let c =
    Hashtbl.fold (fun _ l acc -> acc + List.length l) t.customers 0
  in
  let p = Hashtbl.fold (fun _ l acc -> acc + List.length l) t.peers 0 in
  c + (p / 2)

(* The customer cone of [asn]: itself plus every AS reachable by repeatedly
   following provider→customer edges (paper §4.2 uses these to describe the
   reach of peer announcements). *)
let customer_cone t asn =
  let seen = Hashtbl.create 64 in
  let rec visit asn =
    if not (Hashtbl.mem seen asn) then begin
      Hashtbl.replace seen asn ();
      List.iter visit (customers t asn)
    end
  in
  visit asn;
  Hashtbl.fold (fun asn () acc -> asn :: acc) seen []

let census t =
  let counts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ n ->
      let c = try Hashtbl.find counts n.kind with Not_found -> 0 in
      Hashtbl.replace counts n.kind (c + 1))
    t.nodes;
  Hashtbl.fold (fun kind count acc -> (kind, count) :: acc) counts []

(* -- Synthetic hierarchy generation -------------------------------------- *)

type gen_params = {
  tier1 : int;  (** fully meshed clique at the top *)
  transit : int;  (** mid-tier transit providers *)
  stub : int;  (** edge networks *)
  peering_degree : float;
      (** average number of (extra) lateral peering edges per mid/stub AS *)
  seed : int;
}

let default_gen = { tier1 = 4; transit = 30; stub = 200; peering_degree = 2.0; seed = 7 }

let pick rng l =
  match l with
  | [] -> invalid_arg "As_graph.pick: empty"
  | _ -> List.nth l (Random.State.int rng (List.length l))

(* Stub kind mix approximating the paper's PeeringDB census (§4.2). *)
let stub_kind rng =
  let r = Random.State.float rng 1.0 in
  if r < 0.30 then Access_isp
  else if r < 0.55 then Content
  else if r < 0.65 then Education
  else if r < 0.75 then Enterprise
  else if r < 0.80 then Nonprofit
  else if r < 0.90 then Transit
  else Unclassified

let generate ?(params = default_gen) () =
  let rng = Random.State.make [| params.seed |] in
  let t = create () in
  let next_asn = ref 100 in
  let fresh () =
    let asn = Asn.of_int !next_asn in
    incr next_asn;
    asn
  in
  (* Tier 1: full mesh of peers. *)
  let tier1 = List.init params.tier1 (fun _ -> fresh ()) in
  List.iter (fun asn -> add_node t ~asn ~kind:Transit ~tier:1) tier1;
  List.iteri
    (fun i a ->
      List.iteri (fun j b -> if i < j then add_peering t a b) tier1)
    tier1;
  (* Transit tier: one or two providers drawn from tier 1. *)
  let transit = List.init params.transit (fun _ -> fresh ()) in
  List.iter
    (fun asn ->
      add_node t ~asn ~kind:Transit ~tier:2;
      add_customer t ~provider:(pick rng tier1) ~customer:asn;
      if Random.State.bool rng then
        add_customer t ~provider:(pick rng tier1) ~customer:asn)
    transit;
  (* Stubs: one to three providers drawn from the transit tier. *)
  let stub = List.init params.stub (fun _ -> fresh ()) in
  List.iter
    (fun asn ->
      add_node t ~asn ~kind:(stub_kind rng) ~tier:3;
      let nproviders = 1 + Random.State.int rng 3 in
      for _ = 1 to nproviders do
        add_customer t ~provider:(pick rng transit) ~customer:asn
      done)
    stub;
  (* Lateral peering edges (IXP-style) among transit and stub ASes. *)
  let lateral = transit @ stub in
  let extra =
    int_of_float (params.peering_degree *. float_of_int (List.length lateral) /. 2.)
  in
  for _ = 1 to extra do
    let a = pick rng lateral and b = pick rng lateral in
    if not (Asn.equal a b) then add_peering t a b
  done;
  t
