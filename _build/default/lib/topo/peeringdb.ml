(* A synthetic PeeringDB: per-neighbor interconnection records for a
   PEERING-like footprint. §4.2 of the paper reports the deployment census
   (923 unique peers, their type mix, per-IXP bilateral/route-server
   counts); this module generates and summarizes an equivalent dataset so
   the census benchmark can reproduce those rows. *)

open Bgp

type via = Bilateral | Route_server_only

type record = {
  asn : Asn.t;
  kind : As_graph.kind;
  via : via;
  ixp : string;
}

type t = { records : record list }

(* The paper's per-IXP interconnection counts: (IXP, total peers there,
   bilateral sessions there). *)
let paper_footprint =
  [ ("AMS-IX", 854, 106); ("Seattle-IX", 306, 63); ("Phoenix-IX", 140, 10); ("IX.br/MG", 129, 6) ]

(* Peer-type mix from §4.2 (fractions of unique peers). *)
let paper_type_mix =
  [
    (As_graph.Transit, 0.33);
    (As_graph.Access_isp, 0.28);
    (As_graph.Content, 0.23);
    (As_graph.Unclassified, 0.08);
    (As_graph.Education, 0.03);
    (As_graph.Enterprise, 0.03);
    (As_graph.Nonprofit, 0.01);
    (As_graph.Route_server, 0.01);
  ]

let kind_of_draw r =
  let rec pick acc = function
    | [] -> As_graph.Unclassified
    | (kind, frac) :: rest ->
        if r < acc +. frac then kind else pick (acc +. frac) rest
  in
  pick 0. paper_type_mix

(* Generate a census with the paper's footprint shape. Unique peers may
   appear at several IXPs; [unique_peers] bounds the ASN pool. *)
let generate ?(seed = 3) ?(unique_peers = 923) ?(footprint = paper_footprint) () =
  let rng = Random.State.make [| seed |] in
  let pool =
    Array.init unique_peers (fun i ->
        (Asn.of_int (20000 + i), kind_of_draw (Random.State.float rng 1.0)))
  in
  let records = ref [] in
  List.iter
    (fun (ixp, total, bilateral) ->
      (* Draw [total] distinct peers for this IXP. *)
      let chosen = Hashtbl.create total in
      let drawn = ref 0 in
      while !drawn < min total unique_peers do
        let i = Random.State.int rng unique_peers in
        if not (Hashtbl.mem chosen i) then begin
          Hashtbl.replace chosen i ();
          incr drawn
        end
      done;
      let idx = ref 0 in
      Hashtbl.iter
        (fun i () ->
          let asn, kind = pool.(i) in
          let via = if !idx < bilateral then Bilateral else Route_server_only in
          incr idx;
          records := { asn; kind; via; ixp } :: !records)
        chosen)
    footprint;
  { records = !records }

let records t = t.records

(* Unique peers across all IXPs. *)
let unique_peers t =
  List.sort_uniq Asn.compare (List.map (fun r -> r.asn) t.records)

(* (IXP, total, bilateral) rows, as in §4.2. *)
let by_ixp t =
  let ixps = List.sort_uniq String.compare (List.map (fun r -> r.ixp) t.records) in
  List.map
    (fun ixp ->
      let here = List.filter (fun r -> String.equal r.ixp ixp) t.records in
      let bilateral = List.filter (fun r -> r.via = Bilateral) here in
      (ixp, List.length here, List.length bilateral))
    ixps

(* Peer-type census over unique peers: (kind, count, fraction). *)
let type_census t =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun r -> if not (Hashtbl.mem seen r.asn) then Hashtbl.replace seen r.asn r.kind)
    t.records;
  let total = Hashtbl.length seen in
  let counts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ kind ->
      let c = try Hashtbl.find counts kind with Not_found -> 0 in
      Hashtbl.replace counts kind (c + 1))
    seen;
  Hashtbl.fold
    (fun kind count acc ->
      (kind, count, float_of_int count /. float_of_int total) :: acc)
    counts []
  |> List.sort (fun (_, a, _) (_, b, _) -> Int.compare b a)
