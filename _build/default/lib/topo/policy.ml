(* Gao-Rexford routing policy: the standard model of how business
   relationships shape route selection and export on the real Internet. The
   simulated Internet's speakers follow it, which is what gives PEERING
   experiments realistic visibility (e.g. peer routes only reach customer
   cones, §4.2). *)

(* How a route was learned, in decreasing order of preference. *)
type route_class = From_customer | From_peer | From_provider

let class_rank = function From_customer -> 0 | From_peer -> 1 | From_provider -> 2

(* Local preference values conventionally used for each class. *)
let local_pref = function
  | From_customer -> 300
  | From_peer -> 200
  | From_provider -> 100

(* The export rule: an AS exports every route to its customers, but only
   customer-learned routes to its peers and providers (no valley paths, no
   free transit). *)
let exports_to_customers (_ : route_class) = true
let exports_to_peers_and_providers = function
  | From_customer -> true
  | From_peer | From_provider -> false

(* [prefer a b] < 0 when (class, hops) [a] beats [b]. *)
let prefer (ca, ha) (cb, hb) =
  match Int.compare (class_rank ca) (class_rank cb) with
  | 0 -> Int.compare ha hb
  | c -> c
