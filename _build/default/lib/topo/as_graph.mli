(** An AS-level Internet topology with business relationships.

    PEERING's evaluation leans on properties of its real neighbors — the
    peer-type mix, customer cones, path diversity (paper §4.2) — so the
    generator produces topologies with the same structure: a full-mesh
    tier-1 clique, a transit hierarchy, a stub fringe, and lateral peering
    concentrated at IXPs. *)

open Bgp

(** Network types, mirroring the PeeringDB classification of §4.2. *)
type kind =
  | Transit
  | Access_isp
  | Content
  | Education
  | Enterprise
  | Nonprofit
  | Route_server
  | Unclassified

val kind_to_string : kind -> string

type node = { asn : Asn.t; kind : kind; tier : int }

type t
(** A mutable AS graph. *)

val create : unit -> t

val add_node : t -> asn:Asn.t -> kind:kind -> tier:int -> unit
(** Raises on duplicates. *)

val node : t -> Asn.t -> node option
val mem : t -> Asn.t -> bool

val providers : t -> Asn.t -> Asn.t list
val customers : t -> Asn.t -> Asn.t list
val peers : t -> Asn.t -> Asn.t list
val neighbors : t -> Asn.t -> Asn.t list

val add_customer : t -> provider:Asn.t -> customer:Asn.t -> unit
(** [customer] pays [provider]. Idempotent. *)

val add_peering : t -> Asn.t -> Asn.t -> unit
(** Settlement-free lateral edge. Idempotent. *)

val asns : t -> Asn.t list
val node_count : t -> int
val edge_count : t -> int

val customer_cone : t -> Asn.t -> Asn.t list
(** The AS plus everything reachable following provider→customer edges
    (§4.2: the reach of peer announcements). *)

val census : t -> (kind * int) list

(** {1 Synthetic generation} *)

type gen_params = {
  tier1 : int;  (** fully meshed clique at the top *)
  transit : int;  (** mid-tier transit providers *)
  stub : int;  (** edge networks *)
  peering_degree : float;  (** average lateral peering edges per AS *)
  seed : int;
}

val default_gen : gen_params

val generate : ?params:gen_params -> unit -> t
(** Deterministic per seed. *)
