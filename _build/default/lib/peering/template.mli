(** The templating engine (paper §5): renders the intent model into
    service-specific configuration — a BIRD-style routing-engine config
    (which exceeds 10,000 lines at large PoPs in deployment), an
    OpenVPN-style tunnel config, and the enforcement-engine policy — plus
    the line diffs used to review and canary changes. *)

val render_bird : version:int -> Config_model.pop_intent -> string
(** Filters per experiment (allocation guard + capability marks), one
    protocol stanza per interconnection, one ADD-PATH stanza per
    experiment. *)

val render_openvpn : version:int -> Config_model.pop_intent -> string
val render_policy : version:int -> Config_model.pop_intent -> string

val render_all : Config_model.t -> (string * string * string) list
(** Every (pop, service, contents) triple for the model. *)

type diff_line = Added of string | Removed of string

val diff : old_config:string -> new_config:string -> diff_line list
(** LCS-based line diff; empty for identical inputs. *)

val diff_size : diff_line list -> int
