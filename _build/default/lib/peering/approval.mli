(** The experiment lifecycle (paper §4.6): proposal via a web form, manual
    review granting capabilities per the principle of least privilege, and
    resource allocation on approval. The automatic review encodes the
    paper's reported practice: mass poisonings and pathologically long
    paths are rejected as risky. *)

type proposal = {
  title : string;
  team : string;
  goals : string;
  pops : string list;  (** requested PoPs; [[]] = any *)
  prefix_count : int;
  want_ipv6 : bool;
  requested_caps : Vbgp.Experiment_caps.t;
  max_announced_path_len : int;
      (** the longest AS path the experiment intends to announce *)
}

val proposal :
  ?pops:string list ->
  ?prefix_count:int ->
  ?want_ipv6:bool ->
  ?requested_caps:Vbgp.Experiment_caps.t ->
  ?max_announced_path_len:int ->
  title:string ->
  team:string ->
  goals:string ->
  unit ->
  proposal

type decision = Approve of { notes : string } | Reject of { reason : string }

val review : ?max_poisonings:int -> ?max_path_len:int -> proposal -> decision

type record = {
  id : int;
  proposal : proposal;
  grant : Vbgp.Control_enforcer.grant;
  approved_at : float;
}
(** Resources granted to an approved experiment. *)

val allocate :
  id:int ->
  now:float ->
  prefixes:Netcore.Prefix.t list ->
  prefixes_v6:Netcore.Prefix_v6.t list ->
  asn:Bgp.Asn.t ->
  proposal ->
  record
(** Carve prefixes and an ASN out of the platform's free pools. Raises
    when the IPv4 pool cannot satisfy [prefix_count]. *)

val pp_decision : Format.formatter -> decision -> unit
