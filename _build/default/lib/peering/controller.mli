(** The network controller with transactional semantics (paper §5).

    Reconciles a Netlink-like kernel (add/remove/query primitives only)
    with an intended state by computing a minimal plan — remove
    incompatible configuration, keep what is compatible (so BGP sessions
    and VPNs survive), add what is missing — and applying it atomically:
    on any failure the applied prefix rolls back.

    One Linux quirk is modelled faithfully: an interface's primary address
    is simply the first one added and cannot be swapped in place, yet
    PEERING must control it because it sources ICMP (traceroute) replies.
    When the primary is wrong, the plan removes and re-adds addresses in
    the intended order. *)

open Netcore

(** {1 State model} *)

type iface = {
  ifname : string;
  addresses : Ipv4.t list;  (** primary first *)
  up : bool;
}

type route = { table : int; prefix : Prefix.t; via : Ipv4.t }
type rule = { priority : int; selector : string; table : int }
type state = { ifaces : iface list; routes : route list; rules : rule list }

val empty_state : state
val route_equal : route -> route -> bool
val rule_equal : rule -> rule -> bool

(** {1 Kernel primitives} *)

type op =
  | Create_iface of string
  | Delete_iface of string
  | Set_link of string * bool
  | Add_address of string * Ipv4.t
  | Del_address of string * Ipv4.t
  | Add_route of route
  | Del_route of route
  | Add_rule of rule
  | Del_rule of rule

val pp_op : Format.formatter -> op -> unit

(** A Netlink-like kernel: request/response only, primary address = first
    added, with failure injection for rollback tests. *)
module Kernel : sig
  type t

  val create : unit -> t

  val inject_failure : t -> after:int -> unit
  (** Fail the operation [after] successful ones from now. *)

  val observe : t -> state
  val apply : t -> op -> (unit, string) result
end

(** {1 Planning and transactions} *)

val invert : before:state -> op -> op list
(** The inverse operations for rollback, given the pre-state. *)

val plan : current:state -> desired:state -> op list
(** Minimal plan transforming [current] into [desired]; empty when
    converged. Compatible configuration is never touched. *)

type apply_result =
  | Applied of op list
  | Rolled_back of { failed : op; error : string; undone : int }

val apply_transaction : Kernel.t -> op list -> apply_result
(** All-or-nothing application. *)

val reconcile : Kernel.t -> desired:state -> op list * apply_result
(** Observe, plan, apply. *)

val converged : Kernel.t -> desired:state -> bool

val vbgp_desired_state :
  experiments:(string * Ipv4.t) list ->
  neighbors:(int * Ipv4.t * Ipv4.t) list ->
  state
(** The intent for a vBGP deployment: one tap interface per experiment,
    one routing table + rule per neighbor (paper §3.2.2); neighbors are
    (table id, virtual IP, real IP). *)
