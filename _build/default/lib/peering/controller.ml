(* The network controller with transactional semantics (paper §5).

   vBGP's network configuration — virtual interfaces, one routing table and
   rule per neighbor, filters — is dynamic, but the kernel interface
   (Netlink in the paper, the [Kernel] module here) only offers
   add/remove/query primitives. The controller reconciles the kernel's
   current state with the intended state by computing a minimal plan:
   (i) remove configuration incompatible with the intent, (ii) keep what is
   compatible, (iii) add what is missing. Plans apply transactionally —
   either every operation lands or the applied prefix is rolled back — so a
   PoP is never left half-configured.

   One Linux quirk the paper calls out is modelled faithfully: an
   interface's *primary* address is simply the first one added and cannot
   be changed in place, yet PEERING must control it because it sources
   ICMP (traceroute) replies. When the primary is wrong but present, the
   plan removes and re-adds addresses in the proper order. *)

open Netcore

(* -- state model ------------------------------------------------------------ *)

type iface = {
  ifname : string;
  addresses : Ipv4.t list;  (** primary first *)
  up : bool;
}

type route = { table : int; prefix : Prefix.t; via : Ipv4.t }

type rule = { priority : int; selector : string; table : int }

type state = { ifaces : iface list; routes : route list; rules : rule list }

let empty_state = { ifaces = []; routes = []; rules = [] }

let route_equal (a : route) (b : route) =
  a.table = b.table && Prefix.equal a.prefix b.prefix && Ipv4.equal a.via b.via

let rule_equal (a : rule) (b : rule) =
  a.priority = b.priority
  && String.equal a.selector b.selector
  && a.table = b.table

(* -- kernel primitives -------------------------------------------------------- *)

type op =
  | Create_iface of string
  | Delete_iface of string
  | Set_link of string * bool
  | Add_address of string * Ipv4.t
  | Del_address of string * Ipv4.t
  | Add_route of route
  | Del_route of route
  | Add_rule of rule
  | Del_rule of rule

let pp_op ppf = function
  | Create_iface n -> Fmt.pf ppf "link add %s" n
  | Delete_iface n -> Fmt.pf ppf "link del %s" n
  | Set_link (n, up) -> Fmt.pf ppf "link set %s %s" n (if up then "up" else "down")
  | Add_address (n, ip) -> Fmt.pf ppf "addr add %a dev %s" Ipv4.pp ip n
  | Del_address (n, ip) -> Fmt.pf ppf "addr del %a dev %s" Ipv4.pp ip n
  | Add_route r ->
      Fmt.pf ppf "route add %a via %a table %d" Prefix.pp r.prefix Ipv4.pp
        r.via r.table
  | Del_route r ->
      Fmt.pf ppf "route del %a via %a table %d" Prefix.pp r.prefix Ipv4.pp
        r.via r.table
  | Add_rule r ->
      Fmt.pf ppf "rule add pref %d from %s lookup %d" r.priority r.selector
        r.table
  | Del_rule r ->
      Fmt.pf ppf "rule del pref %d from %s lookup %d" r.priority r.selector
        r.table

(* A Netlink-like kernel: request/response only, no intent, primary address
   = first added. Failure injection lets tests exercise rollback. *)
module Kernel = struct
  type k_iface = {
    mutable k_addresses : Ipv4.t list;  (** insertion order = primary first *)
    mutable k_up : bool;
  }

  type t = {
    ifaces : (string, k_iface) Hashtbl.t;
    mutable routes : route list;
    mutable rules : rule list;
    mutable fail_after : int option;
        (** fail the Nth next operation (0 = the next one) *)
    mutable ops_applied : op list;  (** newest first, for inspection *)
  }

  let create () =
    {
      ifaces = Hashtbl.create 8;
      routes = [];
      rules = [];
      fail_after = None;
      ops_applied = [];
    }

  let inject_failure t ~after = t.fail_after <- Some after

  let observe t : state =
    let ifaces =
      Hashtbl.fold
        (fun ifname k acc ->
          { ifname; addresses = k.k_addresses; up = k.k_up } :: acc)
        t.ifaces []
      |> List.sort (fun a b -> String.compare a.ifname b.ifname)
    in
    { ifaces; routes = t.routes; rules = t.rules }

  let apply t op =
    match t.fail_after with
    | Some 0 ->
        t.fail_after <- None;
        Error (Fmt.str "EINVAL applying: %a" pp_op op)
    | _ ->
        (match t.fail_after with
        | Some n -> t.fail_after <- Some (n - 1)
        | None -> ());
        let result =
          match op with
          | Create_iface n ->
              if Hashtbl.mem t.ifaces n then Error "iface exists"
              else begin
                Hashtbl.replace t.ifaces n { k_addresses = []; k_up = false };
                Ok ()
              end
          | Delete_iface n ->
              if Hashtbl.mem t.ifaces n then begin
                Hashtbl.remove t.ifaces n;
                Ok ()
              end
              else Error "no such iface"
          | Set_link (n, up) -> (
              match Hashtbl.find_opt t.ifaces n with
              | Some k ->
                  k.k_up <- up;
                  Ok ()
              | None -> Error "no such iface")
          | Add_address (n, ip) -> (
              match Hashtbl.find_opt t.ifaces n with
              | Some k ->
                  if List.exists (Ipv4.equal ip) k.k_addresses then
                    Error "address exists"
                  else begin
                    (* Primary = first added: append. *)
                    k.k_addresses <- k.k_addresses @ [ ip ];
                    Ok ()
                  end
              | None -> Error "no such iface")
          | Del_address (n, ip) -> (
              match Hashtbl.find_opt t.ifaces n with
              | Some k ->
                  if List.exists (Ipv4.equal ip) k.k_addresses then begin
                    k.k_addresses <-
                      List.filter
                        (fun a -> not (Ipv4.equal a ip))
                        k.k_addresses;
                    Ok ()
                  end
                  else Error "no such address"
              | None -> Error "no such iface")
          | Add_route r ->
              if List.exists (route_equal r) t.routes then Error "route exists"
              else begin
                t.routes <- t.routes @ [ r ];
                Ok ()
              end
          | Del_route r ->
              if List.exists (route_equal r) t.routes then begin
                t.routes <- List.filter (fun x -> not (route_equal x r)) t.routes;
                Ok ()
              end
              else Error "no such route"
          | Add_rule r ->
              if List.exists (rule_equal r) t.rules then Error "rule exists"
              else begin
                t.rules <- t.rules @ [ r ];
                Ok ()
              end
          | Del_rule r ->
              if List.exists (rule_equal r) t.rules then begin
                t.rules <- List.filter (fun x -> not (rule_equal x r)) t.rules;
                Ok ()
              end
              else Error "no such rule"
        in
        (match result with Ok () -> t.ops_applied <- op :: t.ops_applied | Error _ -> ());
        result
end

(* -- planning ------------------------------------------------------------------ *)

(* The inverse of an operation, for rollback. [before] is the kernel state
   the operation executed against. *)
let invert ~(before : state) = function
  | Create_iface n -> [ Delete_iface n ]
  | Delete_iface n -> (
      match List.find_opt (fun i -> String.equal i.ifname n) before.ifaces with
      | Some i ->
          Create_iface n
          :: List.map (fun a -> Add_address (n, a)) i.addresses
          @ (if i.up then [ Set_link (n, true) ] else [])
      | None -> [])
  | Set_link (n, _) -> (
      match List.find_opt (fun i -> String.equal i.ifname n) before.ifaces with
      | Some i -> [ Set_link (n, i.up) ]
      | None -> [])
  | Add_address (n, ip) -> [ Del_address (n, ip) ]
  | Del_address (n, ip) -> [ Add_address (n, ip) ]
  | Add_route r -> [ Del_route r ]
  | Del_route r -> [ Add_route r ]
  | Add_rule r -> [ Del_rule r ]
  | Del_rule r -> [ Add_rule r ]

(* Compute the minimal plan transforming [current] into [desired]:
   configuration compatible with the intent is untouched (so BGP sessions
   and VPN connections over those interfaces survive, §5). *)
let plan ~(current : state) ~(desired : state) =
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let find_iface st n =
    List.find_opt (fun i -> String.equal i.ifname n) st.ifaces
  in
  (* Interfaces to delete. *)
  List.iter
    (fun (i : iface) ->
      if find_iface desired i.ifname = None then emit (Delete_iface i.ifname))
    current.ifaces;
  (* Interfaces to create or fix. *)
  List.iter
    (fun (want : iface) ->
      match find_iface current want.ifname with
      | None ->
          emit (Create_iface want.ifname);
          List.iter (fun a -> emit (Add_address (want.ifname, a))) want.addresses;
          if want.up then emit (Set_link (want.ifname, true))
      | Some have ->
          let primary_wrong =
            match (have.addresses, want.addresses) with
            | h :: _, w :: _ -> not (Ipv4.equal h w)
            | [], _ :: _ -> false
            | _, [] -> false
          in
          if primary_wrong then begin
            (* The kernel cannot change the primary in place: remove every
               address and re-add in the intended order (§5). *)
            List.iter
              (fun a -> emit (Del_address (want.ifname, a)))
              have.addresses;
            List.iter
              (fun a -> emit (Add_address (want.ifname, a)))
              want.addresses
          end
          else begin
            (* Keep compatible addresses; drop extras; add missing. *)
            List.iter
              (fun a ->
                if not (List.exists (Ipv4.equal a) want.addresses) then
                  emit (Del_address (want.ifname, a)))
              have.addresses;
            List.iter
              (fun a ->
                if not (List.exists (Ipv4.equal a) have.addresses) then
                  emit (Add_address (want.ifname, a)))
              want.addresses
          end;
          if have.up <> want.up then emit (Set_link (want.ifname, want.up)))
    desired.ifaces;
  (* Routes. *)
  List.iter
    (fun r ->
      if not (List.exists (route_equal r) desired.routes) then
        emit (Del_route r))
    current.routes;
  List.iter
    (fun r ->
      if not (List.exists (route_equal r) current.routes) then
        emit (Add_route r))
    desired.routes;
  (* Rules. *)
  List.iter
    (fun r ->
      if not (List.exists (rule_equal r) desired.rules) then emit (Del_rule r))
    current.rules;
  List.iter
    (fun r ->
      if not (List.exists (rule_equal r) current.rules) then emit (Add_rule r))
    desired.rules;
  List.rev !ops

type apply_result =
  | Applied of op list
  | Rolled_back of { failed : op; error : string; undone : int }

(* Apply [ops] transactionally: on any failure, roll back the applied
   prefix (in reverse) and report. *)
let apply_transaction kernel ops =
  let rec go applied = function
    | [] -> Applied (List.rev_map fst applied)
    | op :: rest -> (
        let before = Kernel.observe kernel in
        match Kernel.apply kernel op with
        | Ok () -> go ((op, before) :: applied) rest
        | Error error ->
            (* Roll back everything applied so far. *)
            let undone = ref 0 in
            List.iter
              (fun (op, before) ->
                List.iter
                  (fun inverse ->
                    match Kernel.apply kernel inverse with
                    | Ok () -> incr undone
                    | Error _ -> ())
                  (invert ~before op))
              applied;
            Rolled_back { failed = op; error; undone = !undone })
  in
  go [] ops

(* One-shot reconciliation: observe, plan, apply. *)
let reconcile kernel ~desired =
  let current = Kernel.observe kernel in
  let ops = plan ~current ~desired in
  (ops, apply_transaction kernel ops)

(* Does the kernel now match the intent (ignoring ordering beyond the
   primary address)? *)
let converged kernel ~(desired : state) =
  let current = Kernel.observe kernel in
  plan ~current ~desired = []

(* The desired state for a vBGP deployment: one tap interface per
   experiment, one routing table + rule per neighbor (paper §3.2.2). *)
let vbgp_desired_state ~experiments ~neighbors =
  let ifaces =
    List.map
      (fun (name, addr) ->
        { ifname = Printf.sprintf "tap_%s" name; addresses = [ addr ]; up = true })
      experiments
  in
  let routes, rules =
    List.split
      (List.map
         (fun (id, virtual_ip, real_ip) ->
           ( { table = id; prefix = Prefix.default; via = real_ip },
             {
               priority = 100 + id;
               selector = Ipv4.to_string virtual_ip;
               table = id;
             } ))
         neighbors)
  in
  { ifaces; routes; rules }
