lib/peering/approval.mli: Bgp Format Netcore Vbgp
