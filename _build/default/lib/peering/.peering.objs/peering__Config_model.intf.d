lib/peering/config_model.mli: Asn Bgp Ipv4 Netcore Platform Prefix Vbgp
