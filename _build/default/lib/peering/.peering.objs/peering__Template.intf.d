lib/peering/template.mli: Config_model
