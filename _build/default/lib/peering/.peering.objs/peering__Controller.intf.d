lib/peering/controller.mli: Format Ipv4 Netcore Prefix
