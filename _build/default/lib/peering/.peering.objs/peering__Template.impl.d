lib/peering/template.ml: Array Asn Bgp Buffer Config_model Ipv4 List Netcore Prefix Printf String Vbgp
