lib/peering/neighbor_host.mli: Asn Aspath Attr Bgp Bgp_wire Engine Hashtbl Ipv4 Ipv4_packet Netcore Prefix Prefix_v6 Session Sim Vbgp
