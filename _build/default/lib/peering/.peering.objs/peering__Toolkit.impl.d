lib/peering/toolkit.ml: Asn Aspath Attr Bgp Bgp_wire Buffer Engine Eth Format Fsm Hashtbl Icmp Ipv4 Ipv4_packet Ipv6 Lan List Mac Msg Netcore Option Pop Prefix Printf Rib Session Sim String Udp Vbgp
