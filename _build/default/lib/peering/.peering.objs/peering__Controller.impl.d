lib/peering/controller.ml: Fmt Hashtbl Ipv4 List Netcore Prefix Printf String
