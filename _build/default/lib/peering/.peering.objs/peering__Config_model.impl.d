lib/peering/config_model.ml: Approval Asn Bgp Ipv4 List Neighbor_host Netcore Platform Pop Prefix String Vbgp
