lib/peering/platform.mli: Approval Asn Bgp Engine Neighbor_host Netcore Pop Prefix Sim Topo Trace Vbgp
