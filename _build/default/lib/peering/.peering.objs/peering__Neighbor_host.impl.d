lib/peering/neighbor_host.ml: Asn Aspath Attr Bgp Bgp_wire Engine Hashtbl Ipv4 Ipv4_packet List Msg Netcore Prefix Prefix_v6 Session Sim Vbgp
