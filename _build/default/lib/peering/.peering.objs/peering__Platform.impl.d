lib/peering/platform.ml: Approval Asn Bgp Engine Ipv4 Lan List Neighbor_host Netcore Pop Prefix Prefix_v6 Printf Sim String Topo Trace Vbgp
