lib/peering/toolkit.mli: Asn Bgp Community Engine Fsm Ipv4 Ipv4_packet Mac Netcore Pop Prefix Prefix_v6 Rib Sim Udp Vbgp
