lib/peering/pop.ml: Asn Bgp Engine List Neighbor_host Netcore Prefix Printf Sim Vbgp
