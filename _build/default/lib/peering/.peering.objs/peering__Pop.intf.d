lib/peering/pop.mli: Asn Bgp Engine Ipv4 Neighbor_host Netcore Prefix Sim Trace Vbgp
