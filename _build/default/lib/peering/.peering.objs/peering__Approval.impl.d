lib/peering/approval.ml: Fmt List Printf Vbgp
