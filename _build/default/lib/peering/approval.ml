(* The experiment lifecycle (paper §4.6): researchers submit a proposal via
   a web form; administrators review it, granting capabilities per the
   principle of least privilege; approval allocates prefixes and an ASN and
   produces the grant the enforcement engines consult. The paper reports
   rejecting proposals needing very large numbers of poisonings or
   pathologically long paths — the automatic review encodes those norms. *)

type proposal = {
  title : string;
  team : string;
  goals : string;
  pops : string list;  (** requested PoPs, [] = any *)
  prefix_count : int;
  want_ipv6 : bool;
  requested_caps : Vbgp.Experiment_caps.t;
  max_announced_path_len : int;
      (** longest AS path the experiment intends to announce *)
}

let proposal ?(pops = []) ?(prefix_count = 1) ?(want_ipv6 = false)
    ?(requested_caps = Vbgp.Experiment_caps.default)
    ?(max_announced_path_len = 8) ~title ~team ~goals () =
  {
    title;
    team;
    goals;
    pops;
    prefix_count;
    want_ipv6;
    requested_caps;
    max_announced_path_len;
  }

type decision =
  | Approve of { notes : string }
  | Reject of { reason : string }

(* Risk review. The thresholds mirror the paper's reported practice:
   experiments needing a large number of AS poisonings, or announcing
   paths with thousands of ASes, are rejected as risky; everything else is
   approved, with capabilities granted exactly as requested. *)
let review ?(max_poisonings = 3) ?(max_path_len = 32) (p : proposal) =
  if p.requested_caps.Vbgp.Experiment_caps.max_poisoned > max_poisonings then
    Reject
      {
        reason =
          Printf.sprintf
            "requested %d AS poisonings exceeds the platform's risk limit \
             of %d"
            p.requested_caps.Vbgp.Experiment_caps.max_poisoned max_poisonings;
      }
  else if p.max_announced_path_len > max_path_len then
    Reject
      {
        reason =
          Printf.sprintf
            "announced paths of %d ASes risk triggering router bugs (limit \
             %d)"
            p.max_announced_path_len max_path_len;
      }
  else if p.goals = "" then
    Reject { reason = "proposal must state experiment goals" }
  else
    Approve
      {
        notes =
          (if
             p.requested_caps.Vbgp.Experiment_caps.max_poisoned > 0
             || p.requested_caps.Vbgp.Experiment_caps.allow_transit
           then "granted with elevated capabilities after review"
           else "basic announcement capabilities");
      }

(* Resources granted to an approved experiment. *)
type record = {
  id : int;
  proposal : proposal;
  grant : Vbgp.Control_enforcer.grant;
  approved_at : float;
}

(* Allocate prefixes and an ASN for an approved proposal. [prefixes] and
   [asns] are the platform's free pools. *)
let allocate ~id ~now ~prefixes ~prefixes_v6 ~asn (p : proposal) =
  let name = Printf.sprintf "exp%03d-%s" id p.team in
  let v4 =
    if List.length prefixes < p.prefix_count then
      invalid_arg "Approval.allocate: IPv4 space exhausted"
    else List.filteri (fun i _ -> i < p.prefix_count) prefixes
  in
  let v6 = if p.want_ipv6 then prefixes_v6 else [] in
  let grant =
    Vbgp.Control_enforcer.grant ~asns:[ asn ] ~prefixes:v4 ~prefixes_v6:v6
      ~caps:p.requested_caps name
  in
  { id; proposal = p; grant; approved_at = now }

let pp_decision ppf = function
  | Approve { notes } -> Fmt.pf ppf "approved (%s)" notes
  | Reject { reason } -> Fmt.pf ppf "rejected: %s" reason
