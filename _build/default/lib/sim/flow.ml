(* Flow-level TCP throughput models, used to reproduce the paper's §6
   backbone iperf measurements. Two ingredients:

   - the Mathis et al. model: rate = (MSS / RTT) * (C / sqrt(loss)), an
     upper bound from congestion avoidance behaviour; and
   - max-min fair sharing of link capacity among concurrent flows
     (water-filling), which is what competing TCP flows approximate.

   A flow's modelled throughput is the minimum of its Mathis bound and its
   max-min fair share along its path. *)

(* Mathis model throughput in bytes/second. *)
let mathis ?(mss = 1460.) ?(constant = sqrt (3. /. 2.)) ~rtt ~loss () =
  if rtt <= 0. then invalid_arg "Flow.mathis: rtt";
  if loss <= 0. then infinity
  else mss /. rtt *. (constant /. sqrt loss)

type link = { capacity : float (* bytes/s *); id : int }

let link ~capacity ~id =
  if capacity <= 0. then invalid_arg "Flow.link: capacity";
  { capacity; id }

type flow = { path : link list; demand : float (* bytes/s, may be infinite *) }

let flow ?(demand = infinity) path = { path; demand }

(* Max-min fair allocation by progressive filling: repeatedly saturate the
   most constrained link and freeze the flows crossing it. Returns per-flow
   rates in input order. *)
let max_min_rates flows =
  let n = List.length flows in
  let flows = Array.of_list flows in
  let rates = Array.make n 0. in
  let frozen = Array.make n false in
  (* Remaining capacity per link id. *)
  let remaining = Hashtbl.create 16 in
  Array.iter
    (fun f ->
      List.iter
        (fun l ->
          if not (Hashtbl.mem remaining l.id) then
            Hashtbl.replace remaining l.id l.capacity)
        f.path)
    flows;
  let active_on link_id =
    let count = ref 0 in
    Array.iteri
      (fun i f ->
        if (not frozen.(i)) && List.exists (fun l -> l.id = link_id) f.path
        then incr count)
      flows;
    !count
  in
  let continue = ref true in
  while !continue do
    (* Smallest fair-share increment over all still-shared links, and the
       smallest remaining demand of an unfrozen flow. *)
    let bottleneck = ref None in
    Hashtbl.iter
      (fun id cap ->
        let users = active_on id in
        if users > 0 then begin
          let share = cap /. float_of_int users in
          match !bottleneck with
          | Some (_, best) when best <= share -> ()
          | _ -> bottleneck := Some (id, share)
        end)
      remaining;
    let demand_limited = ref None in
    Array.iteri
      (fun i f ->
        if (not frozen.(i)) && f.demand < infinity then begin
          let need = f.demand -. rates.(i) in
          match !demand_limited with
          | Some (_, best) when best <= need -> ()
          | _ -> demand_limited := Some (i, need)
        end)
      flows;
    match (!bottleneck, !demand_limited) with
    | None, None -> continue := false
    | Some (link_id, share), dl
      when (match dl with Some (_, need) -> share <= need | None -> true) ->
        (* Give every unfrozen flow [share] more, then freeze the flows on
           the saturated link. *)
        Array.iteri
          (fun i f ->
            if not frozen.(i) then begin
              rates.(i) <- rates.(i) +. share;
              List.iter
                (fun l ->
                  let cap = Hashtbl.find remaining l.id in
                  Hashtbl.replace remaining l.id (Float.max 0. (cap -. share)))
                f.path
            end)
          flows;
        Array.iteri
          (fun i f ->
            if
              (not frozen.(i))
              && List.exists (fun l -> l.id = link_id) f.path
            then frozen.(i) <- true)
          flows
    | _, Some (idx, need) ->
        Array.iteri
          (fun i f ->
            if not frozen.(i) then begin
              rates.(i) <- rates.(i) +. need;
              List.iter
                (fun l ->
                  let cap = Hashtbl.find remaining l.id in
                  Hashtbl.replace remaining l.id (Float.max 0. (cap -. need)))
                f.path
            end)
          flows;
        frozen.(idx) <- true
    | Some _, None ->
        (* Unreachable: the guard on the bottleneck case accepts whenever
           there is no demand-limited flow. *)
        assert false
  done;
  Array.to_list rates

(* Modelled throughput of a single TCP flow over [path]. *)
let tcp_throughput ?(mss = 1460.) ~rtt ~loss path =
  let cap =
    List.fold_left (fun acc l -> Float.min acc l.capacity) infinity path
  in
  Float.min cap (mathis ~mss ~rtt ~loss ())
