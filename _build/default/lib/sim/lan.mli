(** An Ethernet broadcast segment — the layer-2 domain between experiments
    and a vBGP router, or the shared fabric of an IXP. Frames are delivered
    by destination MAC; broadcast reaches every other station; unknown
    unicast floods (like a switch that has not learned the port). This is
    the medium over which vBGP's MAC-based signalling runs (paper
    §3.2.2). *)

open Netcore

type t

val create : ?latency:float -> Engine.t -> t

val attach : t -> Mac.t -> (Eth.t -> unit) -> unit
(** Attach (or replace) the station owning [mac]. *)

val detach : t -> Mac.t -> unit
val stations : t -> Mac.t list

val frames_carried : t -> int
(** Total frames transmitted on the segment. *)

val send : t -> Eth.t -> unit
(** Transmit; delivery is scheduled after the segment latency. *)
