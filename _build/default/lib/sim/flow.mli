(** Flow-level TCP throughput models (the §6 backbone iperf reproduction):
    the Mathis congestion-avoidance bound, and max-min fair sharing of link
    capacity among concurrent flows (water-filling). *)

val mathis : ?mss:float -> ?constant:float -> rtt:float -> loss:float -> unit -> float
(** Mathis et al. model, bytes/second: [mss/rtt * C/sqrt(loss)];
    [infinity] at zero loss. *)

type link

val link : capacity:float -> id:int -> link
(** A capacity-constrained hop, bytes/second. Links sharing [id] share
    capacity across flows. *)

type flow

val flow : ?demand:float -> link list -> flow
(** A flow over a path; [demand] caps its rate (default unbounded). *)

val max_min_rates : flow list -> float list
(** Max-min fair allocation by progressive filling; rates in input order. *)

val tcp_throughput : ?mss:float -> rtt:float -> loss:float -> link list -> float
(** One TCP flow over [path]: min of path capacity and the Mathis bound. *)
