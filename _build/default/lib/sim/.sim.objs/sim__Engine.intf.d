lib/sim/engine.mli: Bgp
