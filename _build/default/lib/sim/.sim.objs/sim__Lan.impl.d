lib/sim/lan.ml: Engine Eth List Mac Netcore
