lib/sim/tcp.ml: Engine Float Hashtbl Link Printf String
