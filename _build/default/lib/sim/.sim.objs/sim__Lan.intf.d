lib/sim/lan.mli: Engine Eth Mac Netcore
