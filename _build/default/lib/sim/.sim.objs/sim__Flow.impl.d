lib/sim/flow.ml: Array Float Hashtbl List
