lib/sim/link.mli: Bgp Engine
