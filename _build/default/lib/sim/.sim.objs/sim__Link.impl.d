lib/sim/link.ml: Bgp Engine Float Random String
