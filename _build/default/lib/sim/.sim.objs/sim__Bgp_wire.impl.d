lib/sim/bgp_wire.ml: Bgp Engine Link Session
