lib/sim/bgp_wire.mli: Bgp Engine Link Session
