lib/sim/engine.ml: Array Bgp Float
