lib/sim/tcp.mli: Engine Link
