lib/sim/flow.mli:
