(** An event-driven TCP-Reno-style transfer over a {!Link}: slow start,
    AIMD congestion avoidance, cumulative ACKs with out-of-order buffering,
    timeout-based loss recovery.

    The paper's §6 backbone numbers are iperf3 runs; {!Flow} predicts their
    steady state analytically, while this module actually moves bytes
    through the simulated links so the two can be validated against each
    other (the throughput bench does). Deliberately compact: no handshake,
    no FIN, segment-granularity sequence numbers. *)

type stats = {
  bytes_acked : int;
  duration : float;  (** first send to last ACK, seconds *)
  goodput : float;  (** bytes per second *)
  retransmits : int;  (** timeout-recovered losses *)
}

type t

val start :
  Engine.t ->
  Link.t ->
  ?mss:int ->
  bytes:int ->
  on_complete:(stats -> unit) ->
  unit ->
  t
(** Transfer [bytes] from endpoint A to endpoint B of the link. Installs
    both of the link's receive callbacks (the link is dedicated to the
    transfer). Run the engine to make progress. *)

val is_finished : t -> bool

val run :
  Engine.t ->
  ?mss:int ->
  latency:float ->
  bandwidth:float ->
  ?loss:float ->
  ?seed:int ->
  bytes:int ->
  unit ->
  stats option
(** Convenience: build a link, transfer to completion, return the stats
    ([None] if the transfer did not finish within the event budget). *)
