(** Glue between BGP sessions and simulated links: both endpoints of a
    session over a fresh link, so that starting the active side brings the
    pair to Established through the real FSM/codec path. *)

open Bgp

type pair = {
  active : Session.t;  (** the connecting side *)
  passive : Session.t;  (** the listening side *)
  link : Link.t;
}

val make :
  Engine.t ->
  ?latency:float ->
  ?bandwidth:float ->
  config_active:Session.config ->
  config_passive:Session.config ->
  unit ->
  pair
(** Sessions are created but not started; install handlers with
    {!Session.set_handlers} first. [config_passive] is forced passive. *)

val start : pair -> unit
(** Start both sides; run the engine afterwards to reach Established. *)
