(* A discrete-event simulation engine: a binary min-heap of timestamped
   callbacks. Everything time-dependent in the testbed — link latencies, BGP
   hold/keepalive timers, update churn, rate-limit windows — runs on one of
   these engines, which makes experiments deterministic and fast. *)

type event = { time : float; seq : int; run : unit -> unit; mutable cancelled : bool }

type t = {
  mutable now : float;
  mutable next_seq : int;
  mutable heap : event array;
  mutable size : int;
}

let create () =
  {
    now = 0.;
    next_seq = 0;
    heap = Array.make 64 { time = 0.; seq = 0; run = ignore; cancelled = true };
    size = 0;
  }

let now t = t.now

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  if t.size = Array.length t.heap then begin
    let heap = Array.make (2 * t.size) t.heap.(0) in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && before t.heap.(left) t.heap.(!smallest) then
    smallest := left;
  if right < t.size && before t.heap.(right) t.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t event =
  grow t;
  t.heap.(t.size) <- event;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some top
  end

(* Schedule [f] to run [delay] seconds from now; returns a cancel function.
   Cancellation is lazy: the event stays queued but becomes a no-op. *)
let schedule t delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  let event =
    { time = t.now +. delay; seq = t.next_seq; run = f; cancelled = false }
  in
  t.next_seq <- t.next_seq + 1;
  push t event;
  fun () -> event.cancelled <- true

let schedule_at t time f = schedule t (Float.max 0. (time -. t.now)) f

(* Fire-and-forget scheduling, when the caller never cancels. *)
let run_after t delay f =
  let (_ : unit -> unit) = schedule t delay f in
  ()

let pending t = t.size

(* Run one event; [false] when the queue is empty. *)
let step t =
  match pop t with
  | None -> false
  | Some e ->
      t.now <- Float.max t.now e.time;
      if not e.cancelled then e.run ();
      true

(* Run until the queue drains or [limit] events have executed. *)
let run ?(limit = max_int) t =
  let executed = ref 0 in
  while !executed < limit && step t do
    incr executed
  done;
  !executed

(* Run every event scheduled at or before [time]; later events stay queued
   and the clock finishes exactly at [time]. *)
let run_until t time =
  let continue = ref true in
  while !continue do
    match (if t.size > 0 then Some t.heap.(0) else None) with
    | Some e when e.time <= time -> ignore (step t)
    | _ -> continue := false
  done;
  t.now <- Float.max t.now time

(* Timer service in the shape BGP sessions expect. *)
let timers t : Bgp.Session.timers = { Bgp.Session.schedule = schedule t }
