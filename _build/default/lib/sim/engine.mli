(** A discrete-event simulation engine (binary min-heap of timestamped
    callbacks). Everything time-dependent in the testbed — link latencies,
    BGP hold/keepalive timers, churn, rate-limit windows — runs on one of
    these, making experiments deterministic and fast. *)

type t

val create : unit -> t

val now : t -> float
(** The simulated clock, seconds. *)

val schedule : t -> float -> (unit -> unit) -> unit -> unit
(** [schedule t delay f] runs [f] at [now t +. delay] and returns a cancel
    function (lazy: the slot stays queued but becomes a no-op). Raises on
    negative delay. Events at equal timestamps run in FIFO order. *)

val schedule_at : t -> float -> (unit -> unit) -> unit -> unit

val run_after : t -> float -> (unit -> unit) -> unit
(** Fire-and-forget {!schedule}, when the caller never cancels. *)

val pending : t -> int
(** Queued events (including cancelled ones). *)

val step : t -> bool
(** Run one event; [false] when the queue is empty. *)

val run : ?limit:int -> t -> int
(** Run until the queue drains (or [limit] events); returns the number
    executed. *)

val run_until : t -> float -> unit
(** Run every event at or before [time]; the clock finishes exactly at
    [time]. *)

val timers : t -> Bgp.Session.timers
(** The timer service in the shape BGP sessions expect. *)
