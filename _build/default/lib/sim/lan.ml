(* An Ethernet broadcast segment — the layer-2 domain between experiments
   and a vBGP router, or the shared fabric of an IXP. Frames are delivered
   by destination MAC; broadcast reaches every other station. This is the
   medium over which vBGP's MAC-based signalling (paper §3.2.2) runs. *)

open Netcore

type station = { mac : Mac.t; receive : Eth.t -> unit }

type t = {
  engine : Engine.t;
  latency : float;
  mutable stations : station list;
  mutable frames_carried : int;
}

let create ?(latency = 0.0001) engine =
  { engine; latency; stations = []; frames_carried = 0 }

(* Attach a station; returns a [send] function for it. Re-attaching a MAC
   replaces the previous station (like a port flap). *)
let attach t mac receive =
  t.stations <-
    { mac; receive }
    :: List.filter (fun s -> not (Mac.equal s.mac mac)) t.stations

let detach t mac =
  t.stations <- List.filter (fun s -> not (Mac.equal s.mac mac)) t.stations

let stations t = List.map (fun s -> s.mac) t.stations

let frames_carried t = t.frames_carried

let deliver t station frame =
  Engine.run_after t.engine t.latency (fun () -> station.receive frame)

(* Transmit [frame] onto the segment. Unknown unicast is flooded, like a
   real switch that has not learned the destination. *)
let send t (frame : Eth.t) =
  t.frames_carried <- t.frames_carried + 1;
  if Mac.is_broadcast frame.dst || Mac.is_multicast frame.dst then
    List.iter
      (fun s -> if not (Mac.equal s.mac frame.src) then deliver t s frame)
      t.stations
  else
    match List.find_opt (fun s -> Mac.equal s.mac frame.dst) t.stations with
    | Some s -> deliver t s frame
    | None ->
        List.iter
          (fun s -> if not (Mac.equal s.mac frame.src) then deliver t s frame)
          t.stations
