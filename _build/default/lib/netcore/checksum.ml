(* The Internet (ones-complement) checksum of RFC 1071, used by the IPv4
   header and ICMP codecs. *)

let sum_into acc data =
  let len = String.length data in
  let acc = ref acc in
  let i = ref 0 in
  while !i + 1 < len do
    acc := !acc + String.get_uint16_be data !i;
    i := !i + 2
  done;
  if len land 1 = 1 then acc := !acc + (Char.code data.[len - 1] lsl 8);
  !acc

let finish acc =
  let acc = ref acc in
  while !acc lsr 16 <> 0 do
    acc := (!acc land 0xffff) + (!acc lsr 16)
  done;
  lnot !acc land 0xffff

(* Checksum of a whole string. *)
let of_string data = finish (sum_into 0 data)

(* Valid data (with its checksum field in place) sums to zero. *)
let verify data = of_string data = 0
