(** IPv4 packets (RFC 791; no options, no fragmentation).

    Header checksums are computed on encode and verified on decode so
    corruption in the simulated network is detectable. *)

type protocol = Icmp | Tcp | Udp | Other of int

val protocol_to_int : protocol -> int
val protocol_of_int : int -> protocol

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  ttl : int;
  protocol : protocol;
  ident : int;
  dscp : int;
  payload : string;
}

val header_size : int

val make :
  ?ttl:int ->
  ?ident:int ->
  ?dscp:int ->
  src:Ipv4.t ->
  dst:Ipv4.t ->
  protocol:protocol ->
  string ->
  t
(** [make ~src ~dst ~protocol payload] with TTL defaulting to 64. *)

val decrement_ttl : t -> t
(** A copy with TTL decremented; forwarding engines re-encode it. *)

val encode : t -> string

val decode : string -> (t, string) result
(** Verifies version, IHL, total length, and the header checksum. *)

val pp : Format.formatter -> t -> unit
