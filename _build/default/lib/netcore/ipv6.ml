(* IPv6 addresses as a pair of big-endian 64-bit halves. PEERING allocates a
   single IPv6 /32; we support enough of IPv6 to carry MP-BGP NLRI and to
   allocate experiment prefixes. *)

type t = { hi : int64; lo : int64 }

let make hi lo = { hi; lo }
let equal a b = Int64.equal a.hi b.hi && Int64.equal a.lo b.lo

let compare_u64 a b =
  Int64.compare (Int64.logxor a Int64.min_int) (Int64.logxor b Int64.min_int)

let compare a b =
  match compare_u64 a.hi b.hi with 0 -> compare_u64 a.lo b.lo | c -> c

let any = { hi = 0L; lo = 0L }
let localhost = { hi = 0L; lo = 1L }

(* The sixteen-bit group at position [i] (0 = most significant). *)
let group v i =
  if i < 0 || i > 7 then invalid_arg "Ipv6.group";
  let half = if i < 4 then v.hi else v.lo in
  let shift = 48 - (i mod 4 * 16) in
  Int64.to_int (Int64.logand (Int64.shift_right_logical half shift) 0xffffL)

let of_groups gs =
  if Array.length gs <> 8 then invalid_arg "Ipv6.of_groups";
  let pack a b c d =
    let g x = Int64.of_int (x land 0xffff) in
    Int64.logor
      (Int64.logor (Int64.shift_left (g a) 48) (Int64.shift_left (g b) 32))
      (Int64.logor (Int64.shift_left (g c) 16) (g d))
  in
  { hi = pack gs.(0) gs.(1) gs.(2) gs.(3); lo = pack gs.(4) gs.(5) gs.(6) gs.(7) }

let groups v = Array.init 8 (fun i -> group v i)

(* Render with the standard longest-run-of-zeros "::" compression. *)
let to_string v =
  let gs = groups v in
  (* Find the longest run of zero groups (length >= 2). *)
  let best_start = ref (-1) and best_len = ref 0 in
  let i = ref 0 in
  while !i < 8 do
    if gs.(!i) = 0 then begin
      let j = ref !i in
      while !j < 8 && gs.(!j) = 0 do
        incr j
      done;
      if !j - !i > !best_len then begin
        best_start := !i;
        best_len := !j - !i
      end;
      i := !j
    end
    else incr i
  done;
  if !best_len < 2 then
    String.concat ":" (List.map (Printf.sprintf "%x") (Array.to_list gs))
  else begin
    let before = Array.to_list (Array.sub gs 0 !best_start) in
    let after =
      Array.to_list
        (Array.sub gs (!best_start + !best_len) (8 - !best_start - !best_len))
    in
    let part l = String.concat ":" (List.map (Printf.sprintf "%x") l) in
    part before ^ "::" ^ part after
  end

let of_string s =
  let parse_groups str =
    if str = "" then Some []
    else
      let parts = String.split_on_char ':' str in
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | p :: rest ->
            if p = "" || String.length p > 4 then None
            else (
              match int_of_string_opt ("0x" ^ p) with
              | Some v when v >= 0 && v <= 0xffff -> go (v :: acc) rest
              | _ -> None)
      in
      go [] parts
  in
  let build left right =
    match (parse_groups left, parse_groups right) with
    | Some l, Some r when List.length l + List.length r <= 8 ->
        let zeros = 8 - List.length l - List.length r in
        let gs = Array.of_list (l @ List.init zeros (fun _ -> 0) @ r) in
        Some (of_groups gs)
    | _ -> None
  in
  match
    let len = String.length s in
    let rec find i =
      if i + 1 >= len then None
      else if s.[i] = ':' && s.[i + 1] = ':' then Some i
      else find (i + 1)
    in
    find 0
  with
  | Some i ->
      let left = String.sub s 0 i in
      let right = String.sub s (i + 2) (String.length s - i - 2) in
      if
        String.length right >= 1
        && (String.contains right ':' && right.[0] = ':')
      then None
      else build left right
  | None -> (
      match parse_groups s with
      | Some gs when List.length gs = 8 -> Some (of_groups (Array.of_list gs))
      | _ -> None)

let of_string_exn s =
  match of_string s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Ipv6.of_string_exn: %S" s)

(* Bit [i] (0 = most significant of the whole 128-bit address). *)
let bit v i =
  if i < 0 || i > 127 then invalid_arg "Ipv6.bit";
  let half = if i < 64 then v.hi else v.lo in
  let off = i mod 64 in
  Int64.logand (Int64.shift_right_logical half (63 - off)) 1L = 1L

let set_bit v i b =
  if i < 0 || i > 127 then invalid_arg "Ipv6.set_bit";
  let mask half off =
    let m = Int64.shift_left 1L (63 - off) in
    if b then Int64.logor half m else Int64.logand half (Int64.lognot m)
  in
  if i < 64 then { v with hi = mask v.hi i } else { v with lo = mask v.lo (i - 64) }

let pp ppf v = Fmt.string ppf (to_string v)
