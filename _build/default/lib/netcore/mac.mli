(** 48-bit Ethernet MAC addresses.

    vBGP assigns a distinct locally-administered MAC to every BGP neighbor;
    the destination MAC of a frame is how an experiment encodes its
    per-packet routing decision (paper §3.2.2). *)

type t
(** A MAC address. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val of_int : int -> t
(** Raises [Invalid_argument] outside [0, 2{^48}). *)

val to_int : t -> int

val broadcast : t
(** [ff:ff:ff:ff:ff:ff]. *)

val zero : t

val is_broadcast : t -> bool
val is_multicast : t -> bool

val is_local_admin : t -> bool
(** The locally-administered bit is set (all pool-allocated MACs). *)

val local : pool:int -> int -> t
(** [local ~pool n] is the [n]-th locally-administered address of the
    8-bit [pool] tag; distinct pools never collide. *)

val to_string : t -> string
(** Colon-separated lowercase hex. *)

val of_string : string -> t option
val of_string_exn : string -> t

val pp : Format.formatter -> t -> unit
