(** ARP for IPv4 over Ethernet (RFC 826).

    vBGP answers ARP queries for its virtual next-hop IPs with per-neighbor
    MACs (paper §3.2.2 steps 6-7): this protocol is the hinge of the
    data-plane delegation mechanism. *)

type op = Request | Reply

type t = {
  op : op;
  sender_mac : Mac.t;
  sender_ip : Ipv4.t;
  target_mac : Mac.t;
  target_ip : Ipv4.t;
}

val request : sender_mac:Mac.t -> sender_ip:Ipv4.t -> target_ip:Ipv4.t -> t
(** A who-has query (target MAC zeroed). *)

val reply :
  sender_mac:Mac.t ->
  sender_ip:Ipv4.t ->
  target_mac:Mac.t ->
  target_ip:Ipv4.t ->
  t
(** An is-at answer. *)

val encode : t -> string
val decode : string -> (t, string) result
val pp : Format.formatter -> t -> unit
