(** Byte-level big-endian reader/writer shared by every wire codec
    (Ethernet, ARP, IPv4, ICMP, UDP, and all of BGP). *)

exception Truncated of string
(** Raised by {!Reader} operations that run past the end of input; the
    payload names the read that failed. *)

(** Growable big-endian byte buffer. *)
module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int

  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val u64 : t -> int64 -> unit
  val string : t -> string -> unit
  val bytes : t -> Bytes.t -> unit

  val reserve : t -> int -> int
  (** [reserve w n] appends [n] zero bytes and returns their offset, for
      length fields only known once the body is written. *)

  val patch_u8 : t -> int -> int -> unit
  val patch_u16 : t -> int -> int -> unit

  val contents : t -> string
  val clear : t -> unit
end

(** Bounded big-endian cursor over an immutable string. *)
module Reader : sig
  type t

  val of_string : ?pos:int -> ?len:int -> string -> t
  (** A cursor over [string.[pos, pos+len)]. Raises [Invalid_argument] on
      bad bounds. *)

  val remaining : t -> int
  val eof : t -> bool
  val position : t -> int

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int32
  val u64 : t -> int64

  val take : t -> int -> string
  val take_rest : t -> string

  val sub : t -> int -> t
  (** [sub r n] is a sub-reader over the next [n] bytes; the parent cursor
      skips past them (attribute/parameter framing). *)

  val skip : t -> int -> unit
end
