(* IPv4 packets (RFC 791), without options or fragmentation — the testbed
   never fragments. Header checksums are computed on encode and verified on
   decode so that corruption in the simulated network is detectable. *)

type protocol = Icmp | Tcp | Udp | Other of int

let protocol_to_int = function
  | Icmp -> 1
  | Tcp -> 6
  | Udp -> 17
  | Other v -> v

let protocol_of_int = function
  | 1 -> Icmp
  | 6 -> Tcp
  | 17 -> Udp
  | v -> Other v

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  ttl : int;
  protocol : protocol;
  ident : int;
  dscp : int;
  payload : string;
}

let header_size = 20

let make ?(ttl = 64) ?(ident = 0) ?(dscp = 0) ~src ~dst ~protocol payload =
  { src; dst; ttl; protocol; ident; dscp; payload }

(* A copy with the TTL decremented; forwarding engines must re-encode. *)
let decrement_ttl t = { t with ttl = t.ttl - 1 }

let encode t =
  let total = header_size + String.length t.payload in
  let w = Wire.Writer.create ~capacity:total () in
  Wire.Writer.u8 w 0x45 (* version 4, IHL 5 *);
  Wire.Writer.u8 w (t.dscp lsl 2);
  Wire.Writer.u16 w total;
  Wire.Writer.u16 w t.ident;
  Wire.Writer.u16 w 0 (* flags/fragment *);
  Wire.Writer.u8 w t.ttl;
  Wire.Writer.u8 w (protocol_to_int t.protocol);
  let cksum_off = Wire.Writer.reserve w 2 in
  Wire.Writer.u32 w (Ipv4.to_int32 t.src);
  Wire.Writer.u32 w (Ipv4.to_int32 t.dst);
  let header = Wire.Writer.contents w in
  Wire.Writer.patch_u16 w cksum_off (Checksum.of_string header);
  Wire.Writer.string w t.payload;
  Wire.Writer.contents w

let decode data =
  try
    let r = Wire.Reader.of_string data in
    let vihl = Wire.Reader.u8 r in
    if vihl lsr 4 <> 4 then Error "ipv4: bad version"
    else if vihl land 0xf <> 5 then Error "ipv4: options unsupported"
    else begin
      let dscp_ecn = Wire.Reader.u8 r in
      let total = Wire.Reader.u16 r in
      let ident = Wire.Reader.u16 r in
      let _flags = Wire.Reader.u16 r in
      let ttl = Wire.Reader.u8 r in
      let protocol = protocol_of_int (Wire.Reader.u8 r) in
      let _cksum = Wire.Reader.u16 r in
      let src = Ipv4.of_int32 (Wire.Reader.u32 r) in
      let dst = Ipv4.of_int32 (Wire.Reader.u32 r) in
      if total < header_size || total > String.length data then
        Error "ipv4: bad total length"
      else if not (Checksum.verify (String.sub data 0 header_size)) then
        Error "ipv4: bad header checksum"
      else
        let payload = String.sub data header_size (total - header_size) in
        Ok
          {
            src;
            dst;
            ttl;
            protocol;
            ident;
            dscp = dscp_ecn lsr 2;
            payload;
          }
    end
  with Wire.Truncated what -> Error (Printf.sprintf "ipv4: truncated %s" what)

let pp ppf t =
  Fmt.pf ppf "ip %a -> %a ttl=%d proto=%d len=%d" Ipv4.pp t.src Ipv4.pp t.dst
    t.ttl
    (protocol_to_int t.protocol)
    (String.length t.payload)
