(** The ICMP subset the testbed needs: echo (connectivity probes), TTL
    exceeded (traceroute — the reason PEERING's controller manages primary
    addresses, paper §5), and destination unreachable. *)

type t =
  | Echo_request of { id : int; seq : int; payload : string }
  | Echo_reply of { id : int; seq : int; payload : string }
  | Ttl_exceeded of { original : string }
      (** [original] carries the leading bytes of the expired datagram. *)
  | Dest_unreachable of { code : int; original : string }

val encode : t -> string
(** Includes the ICMP checksum. *)

val decode : string -> (t, string) result
(** Verifies the checksum. *)

val pp : Format.formatter -> t -> unit
