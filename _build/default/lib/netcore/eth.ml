(* Ethernet II frames. The 14-byte header is the only part modelled; frame
   check sequences are out of scope for a software testbed. *)

type ethertype = Ipv4 | Arp | Ipv6 | Other of int

let ethertype_to_int = function
  | Ipv4 -> 0x0800
  | Arp -> 0x0806
  | Ipv6 -> 0x86dd
  | Other v -> v

let ethertype_of_int = function
  | 0x0800 -> Ipv4
  | 0x0806 -> Arp
  | 0x86dd -> Ipv6
  | v -> Other v

let pp_ethertype ppf = function
  | Ipv4 -> Fmt.string ppf "ipv4"
  | Arp -> Fmt.string ppf "arp"
  | Ipv6 -> Fmt.string ppf "ipv6"
  | Other v -> Fmt.pf ppf "0x%04x" v

type t = {
  dst : Mac.t;
  src : Mac.t;
  ethertype : ethertype;
  payload : string;
}

let header_size = 14

let write_mac w (m : Mac.t) =
  let v = Mac.to_int m in
  Wire.Writer.u16 w (v lsr 32);
  Wire.Writer.u32 w (Int32.of_int (v land 0xffffffff))

let read_mac r =
  let hi = Wire.Reader.u16 r in
  let lo = Int32.to_int (Wire.Reader.u32 r) land 0xffffffff in
  Mac.of_int ((hi lsl 32) lor lo)

let encode t =
  let w = Wire.Writer.create ~capacity:(header_size + String.length t.payload) () in
  write_mac w t.dst;
  write_mac w t.src;
  Wire.Writer.u16 w (ethertype_to_int t.ethertype);
  Wire.Writer.string w t.payload;
  Wire.Writer.contents w

let decode data =
  try
    let r = Wire.Reader.of_string data in
    let dst = read_mac r in
    let src = read_mac r in
    let ethertype = ethertype_of_int (Wire.Reader.u16 r) in
    Ok { dst; src; ethertype; payload = Wire.Reader.take_rest r }
  with Wire.Truncated what -> Error (Printf.sprintf "eth: truncated %s" what)

let pp ppf t =
  Fmt.pf ppf "eth %a -> %a (%a, %d bytes)" Mac.pp t.src Mac.pp t.dst
    pp_ethertype t.ethertype
    (String.length t.payload)
