(* 48-bit Ethernet MAC addresses packed into an OCaml [int].

   vBGP assigns a distinct locally-administered MAC to every BGP neighbor; an
   experiment's per-packet routing decision is the destination MAC it puts on
   the frame (paper §3.2.2), so these addresses are the core signalling
   primitive of the data plane. *)

type t = int

let equal = Int.equal
let compare = Int.compare
let hash v = v land max_int

let of_int v =
  if v < 0 || v > 0xffffffffffff then invalid_arg "Mac.of_int";
  v

let to_int v = v

let broadcast = 0xffffffffffff
let zero = 0
let is_broadcast v = v = broadcast

(* Locally-administered unicast bit pattern: x2:xx:... *)
let local_admin_bit = 0x020000000000

let is_local_admin v = v land local_admin_bit <> 0
let is_multicast v = v land 0x010000000000 <> 0

(* The [n]-th address of a locally-administered pool tagged by [pool]
   (0-255). Used for vBGP's per-neighbor MAC assignment. *)
let local ~pool n =
  if pool < 0 || pool > 0xff then invalid_arg "Mac.local: pool";
  if n < 0 || n > 0xffffffff then invalid_arg "Mac.local: index";
  local_admin_bit lor (pool lsl 32) lor n

let to_string v =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((v lsr 40) land 0xff)
    ((v lsr 32) land 0xff)
    ((v lsr 24) land 0xff)
    ((v lsr 16) land 0xff)
    ((v lsr 8) land 0xff)
    (v land 0xff)

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] -> (
      let parse x =
        if String.length x <> 2 then None
        else
          match int_of_string_opt ("0x" ^ x) with
          | Some v when v >= 0 && v <= 255 -> Some v
          | _ -> None
      in
      let rec combine acc = function
        | [] -> Some acc
        | p :: rest -> (
            match parse p with
            | Some v -> combine ((acc lsl 8) lor v) rest
            | None -> None)
      in
      combine 0 [ a; b; c; d; e; f ])
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Mac.of_string_exn: %S" s)

let pp ppf v = Fmt.string ppf (to_string v)
