(* IPv4 prefixes in CIDR notation. The network address is always stored with
   host bits cleared, so structural equality coincides with prefix equality. *)

type t = { network : Ipv4.t; len : int }

let mask_of_len len =
  if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length";
  {
    network = Ipv4.of_int32 (Int32.logand (Ipv4.to_int32 addr) (mask_of_len len));
    len;
  }

let network p = p.network
let length p = p.len
let netmask p = mask_of_len p.len

let equal a b = Ipv4.equal a.network b.network && a.len = b.len

let compare a b =
  match Ipv4.compare a.network b.network with
  | 0 -> Int.compare a.len b.len
  | c -> c

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.network) p.len

let of_string s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let addr = String.sub s 0 i in
      let len = String.sub s (i + 1) (String.length s - i - 1) in
      match (Ipv4.of_string addr, int_of_string_opt len) with
      | Some addr, Some len when len >= 0 && len <= 32 -> Some (make addr len)
      | _ -> None)

let of_string_exn s =
  match of_string s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string_exn: %S" s)

let mem addr p =
  Ipv4.equal
    (Ipv4.of_int32 (Int32.logand (Ipv4.to_int32 addr) (mask_of_len p.len)))
    p.network

(* [subset ~sub ~super] holds when every address of [sub] is in [super]. *)
let subset ~sub ~super = sub.len >= super.len && mem sub.network super

(* Bit [i] of the network address, [i] in [0, len). *)
let bit p i =
  Int32.logand (Int32.shift_right_logical (Ipv4.to_int32 p.network) (31 - i)) 1l
  = 1l

(* The [n]-th address inside the prefix (0 is the network address). *)
let host p n =
  let size = if p.len = 32 then 1 else 1 lsl (32 - p.len) in
  if n < 0 || n >= size then invalid_arg "Prefix.host: out of range";
  Ipv4.add p.network n

let size p = 1 lsl (32 - p.len)

(* Split into the two half-length subprefixes. *)
let split p =
  if p.len >= 32 then invalid_arg "Prefix.split: /32";
  let left = { network = p.network; len = p.len + 1 } in
  let right =
    { network = Ipv4.add p.network (1 lsl (31 - p.len)); len = p.len + 1 }
  in
  (left, right)

(* Enumerate the [2^(sub - p.len)] subprefixes of [p] of length [sub]. *)
let subnets p sub =
  if sub < p.len || sub > 32 then invalid_arg "Prefix.subnets";
  let count = 1 lsl (sub - p.len) in
  let step = if sub = 32 then 1 else 1 lsl (32 - sub) in
  List.init count (fun i -> { network = Ipv4.add p.network (i * step); len = sub })

let default = { network = Ipv4.any; len = 0 }

let pp ppf p = Fmt.string ppf (to_string p)
