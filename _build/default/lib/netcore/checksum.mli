(** The Internet (ones-complement) checksum of RFC 1071, used by the IPv4
    header and ICMP codecs. *)

val sum_into : int -> string -> int
(** Accumulate the 16-bit ones-complement sum of [data] into a partial
    sum (for pseudo-header style computations). *)

val finish : int -> int
(** Fold carries and complement a partial sum into the final checksum. *)

val of_string : string -> int
(** Checksum of a whole string (checksum field zeroed by the caller). *)

val verify : string -> bool
(** Valid data, with its checksum field in place, sums to zero. *)
