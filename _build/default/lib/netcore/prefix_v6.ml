(* IPv6 prefixes, mirroring {!Prefix} for the v6 address family. *)

type t = { network : Ipv6.t; len : int }

let mask_half bits =
  if bits <= 0 then 0L
  else if bits >= 64 then -1L
  else Int64.shift_left (-1L) (64 - bits)

let make addr len =
  if len < 0 || len > 128 then invalid_arg "Prefix_v6.make: length";
  let hi_mask = mask_half len and lo_mask = mask_half (len - 64) in
  let network =
    Ipv6.make
      (Int64.logand addr.Ipv6.hi hi_mask)
      (Int64.logand addr.Ipv6.lo lo_mask)
  in
  { network; len }

let network p = p.network
let length p = p.len

let equal a b = Ipv6.equal a.network b.network && a.len = b.len

let compare a b =
  match Ipv6.compare a.network b.network with
  | 0 -> Int.compare a.len b.len
  | c -> c

let to_string p = Printf.sprintf "%s/%d" (Ipv6.to_string p.network) p.len

let of_string s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let addr = String.sub s 0 i in
      let len = String.sub s (i + 1) (String.length s - i - 1) in
      match (Ipv6.of_string addr, int_of_string_opt len) with
      | Some addr, Some len when len >= 0 && len <= 128 ->
          Some (make addr len)
      | _ -> None)

let of_string_exn s =
  match of_string s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix_v6.of_string_exn: %S" s)

let mem addr p =
  let m = make addr p.len in
  Ipv6.equal m.network p.network

let subset ~sub ~super = sub.len >= super.len && mem sub.network super

let bit p i = Ipv6.bit p.network i

(* The [n]-th /[sub] subprefix of [p]; used for experiment allocations. *)
let subnet p sub n =
  if sub < p.len || sub > 128 then invalid_arg "Prefix_v6.subnet";
  if n < 0 || (sub - p.len < 62 && n >= 1 lsl (sub - p.len)) then
    invalid_arg "Prefix_v6.subnet: index";
  (* Add [n] at bit position [sub]: set bits [p.len, sub) from [n]. *)
  let rec apply addr bitpos v =
    if bitpos < p.len then addr
    else
      apply (Ipv6.set_bit addr bitpos (v land 1 = 1)) (bitpos - 1) (v lsr 1)
  in
  { network = apply p.network (sub - 1) n; len = sub }

let pp ppf p = Fmt.string ppf (to_string p)
