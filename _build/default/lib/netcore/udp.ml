(* A minimal UDP codec, used by example experiments that host services
   reachable from the simulated Internet (paper §2.1). Checksums are elided
   (legal for UDP over IPv4). *)

type t = { src_port : int; dst_port : int; payload : string }

let header_size = 8

let encode t =
  let w = Wire.Writer.create ~capacity:(header_size + String.length t.payload) () in
  Wire.Writer.u16 w t.src_port;
  Wire.Writer.u16 w t.dst_port;
  Wire.Writer.u16 w (header_size + String.length t.payload);
  Wire.Writer.u16 w 0;
  Wire.Writer.string w t.payload;
  Wire.Writer.contents w

let decode data =
  try
    let r = Wire.Reader.of_string data in
    let src_port = Wire.Reader.u16 r in
    let dst_port = Wire.Reader.u16 r in
    let len = Wire.Reader.u16 r in
    let _cksum = Wire.Reader.u16 r in
    if len < header_size || len > String.length data then
      Error "udp: bad length"
    else Ok { src_port; dst_port; payload = Wire.Reader.take r (len - header_size) }
  with Wire.Truncated what -> Error (Printf.sprintf "udp: truncated %s" what)

let pp ppf t =
  Fmt.pf ppf "udp %d -> %d (%d bytes)" t.src_port t.dst_port
    (String.length t.payload)
