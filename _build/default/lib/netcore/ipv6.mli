(** IPv6 addresses (two big-endian 64-bit halves).

    PEERING allocates a single IPv6 /32 (paper §4.2); enough IPv6 is
    supported to carry MP-BGP NLRI and allocate experiment prefixes. *)

type t = { hi : int64; lo : int64 }

val make : int64 -> int64 -> t
val equal : t -> t -> bool

val compare : t -> t -> int
(** Unsigned 128-bit order. *)

val any : t
(** [::]. *)

val localhost : t
(** [::1]. *)

val group : t -> int -> int
(** [group v i] is the [i]-th 16-bit group, [0] most significant. *)

val of_groups : int array -> t
(** From eight 16-bit groups. *)

val groups : t -> int array

val to_string : t -> string
(** Standard rendering with longest-zero-run [::] compression. *)

val of_string : string -> t option
(** Parses full and [::]-compressed forms. *)

val of_string_exn : string -> t

val bit : t -> int -> bool
(** [bit v i] is bit [i] of the 128, [0] most significant. *)

val set_bit : t -> int -> bool -> t

val pp : Format.formatter -> t -> unit
