lib/netcore/icmp.ml: Checksum Fmt Printf Wire
