lib/netcore/prefix.mli: Format Ipv4
