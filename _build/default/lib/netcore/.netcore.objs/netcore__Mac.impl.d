lib/netcore/mac.ml: Fmt Int Printf String
