lib/netcore/ptrie.ml: List Option Prefix Prefix_v6
