lib/netcore/eth.mli: Format Mac Wire
