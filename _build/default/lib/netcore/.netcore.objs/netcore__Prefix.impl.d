lib/netcore/prefix.ml: Fmt Int Int32 Ipv4 List Printf String
