lib/netcore/arp.mli: Format Ipv4 Mac
