lib/netcore/icmp.mli: Format
