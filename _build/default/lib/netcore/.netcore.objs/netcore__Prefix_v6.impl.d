lib/netcore/prefix_v6.ml: Fmt Int Int64 Ipv6 Printf String
