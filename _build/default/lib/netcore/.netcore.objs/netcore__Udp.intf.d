lib/netcore/udp.mli: Format
