lib/netcore/ipv4_packet.ml: Checksum Fmt Ipv4 Printf String Wire
