lib/netcore/udp.ml: Fmt Printf String Wire
