lib/netcore/eth.ml: Fmt Int32 Mac Printf String Wire
