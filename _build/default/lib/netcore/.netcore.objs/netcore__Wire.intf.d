lib/netcore/wire.mli: Bytes
