lib/netcore/ipv6.mli: Format
