lib/netcore/ptrie.mli: Ipv4 Ipv6 Prefix Prefix_v6
