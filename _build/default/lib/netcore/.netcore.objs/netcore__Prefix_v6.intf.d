lib/netcore/prefix_v6.mli: Format Ipv6
