lib/netcore/arp.ml: Eth Fmt Ipv4 Mac Printf Wire
