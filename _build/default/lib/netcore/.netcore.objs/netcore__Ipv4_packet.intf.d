lib/netcore/ipv4_packet.mli: Format Ipv4
