lib/netcore/ipv6.ml: Array Fmt Int64 List Printf String
