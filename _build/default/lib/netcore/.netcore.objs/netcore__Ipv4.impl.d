lib/netcore/ipv4.ml: Fmt Int32 Printf String
