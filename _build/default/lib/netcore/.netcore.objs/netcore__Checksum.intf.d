lib/netcore/checksum.mli:
