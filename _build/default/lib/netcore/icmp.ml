(* The ICMP subset the testbed needs: echo (connectivity probes), TTL
   exceeded (traceroute — the paper's network controller goes out of its way
   to keep primary addresses correct for exactly these replies, §5), and
   destination unreachable. *)

type t =
  | Echo_request of { id : int; seq : int; payload : string }
  | Echo_reply of { id : int; seq : int; payload : string }
  | Ttl_exceeded of { original : string }
      (** [original] is the leading bytes of the expired datagram. *)
  | Dest_unreachable of { code : int; original : string }

let encode t =
  let w = Wire.Writer.create ~capacity:32 () in
  let typ, code =
    match t with
    | Echo_request _ -> (8, 0)
    | Echo_reply _ -> (0, 0)
    | Ttl_exceeded _ -> (11, 0)
    | Dest_unreachable { code; _ } -> (3, code)
  in
  Wire.Writer.u8 w typ;
  Wire.Writer.u8 w code;
  let cksum_off = Wire.Writer.reserve w 2 in
  (match t with
  | Echo_request { id; seq; payload } | Echo_reply { id; seq; payload } ->
      Wire.Writer.u16 w id;
      Wire.Writer.u16 w seq;
      Wire.Writer.string w payload
  | Ttl_exceeded { original } | Dest_unreachable { original; _ } ->
      Wire.Writer.u32 w 0l;
      Wire.Writer.string w original);
  let body = Wire.Writer.contents w in
  Wire.Writer.patch_u16 w cksum_off (Checksum.of_string body);
  Wire.Writer.contents w

let decode data =
  try
    if not (Checksum.verify data) then Error "icmp: bad checksum"
    else
      let r = Wire.Reader.of_string data in
      let typ = Wire.Reader.u8 r in
      let code = Wire.Reader.u8 r in
      let _cksum = Wire.Reader.u16 r in
      match typ with
      | 8 | 0 ->
          let id = Wire.Reader.u16 r in
          let seq = Wire.Reader.u16 r in
          let payload = Wire.Reader.take_rest r in
          if typ = 8 then Ok (Echo_request { id; seq; payload })
          else Ok (Echo_reply { id; seq; payload })
      | 11 ->
          Wire.Reader.skip r 4;
          Ok (Ttl_exceeded { original = Wire.Reader.take_rest r })
      | 3 ->
          Wire.Reader.skip r 4;
          Ok (Dest_unreachable { code; original = Wire.Reader.take_rest r })
      | _ -> Error (Printf.sprintf "icmp: unsupported type %d" typ)
  with Wire.Truncated what -> Error (Printf.sprintf "icmp: truncated %s" what)

let pp ppf = function
  | Echo_request { id; seq; _ } -> Fmt.pf ppf "icmp echo-request %d/%d" id seq
  | Echo_reply { id; seq; _ } -> Fmt.pf ppf "icmp echo-reply %d/%d" id seq
  | Ttl_exceeded _ -> Fmt.string ppf "icmp ttl-exceeded"
  | Dest_unreachable { code; _ } -> Fmt.pf ppf "icmp unreachable code=%d" code
