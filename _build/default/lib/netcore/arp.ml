(* ARP for IPv4 over Ethernet (RFC 826). vBGP answers ARP queries for its
   virtual next-hop IPs with the per-neighbor MAC (paper §3.2.2 step 6-7), so
   this protocol is the hinge of the data-plane delegation mechanism. *)

type op = Request | Reply

type t = {
  op : op;
  sender_mac : Mac.t;
  sender_ip : Ipv4.t;
  target_mac : Mac.t;
  target_ip : Ipv4.t;
}

let request ~sender_mac ~sender_ip ~target_ip =
  { op = Request; sender_mac; sender_ip; target_mac = Mac.zero; target_ip }

let reply ~sender_mac ~sender_ip ~target_mac ~target_ip =
  { op = Reply; sender_mac; sender_ip; target_mac; target_ip }

let encode t =
  let w = Wire.Writer.create ~capacity:28 () in
  Wire.Writer.u16 w 1 (* hardware: Ethernet *);
  Wire.Writer.u16 w 0x0800 (* protocol: IPv4 *);
  Wire.Writer.u8 w 6;
  Wire.Writer.u8 w 4;
  Wire.Writer.u16 w (match t.op with Request -> 1 | Reply -> 2);
  Eth.write_mac w t.sender_mac;
  Wire.Writer.u32 w (Ipv4.to_int32 t.sender_ip);
  Eth.write_mac w t.target_mac;
  Wire.Writer.u32 w (Ipv4.to_int32 t.target_ip);
  Wire.Writer.contents w

let decode data =
  try
    let r = Wire.Reader.of_string data in
    let hw = Wire.Reader.u16 r in
    let proto = Wire.Reader.u16 r in
    let hlen = Wire.Reader.u8 r in
    let plen = Wire.Reader.u8 r in
    if hw <> 1 || proto <> 0x0800 || hlen <> 6 || plen <> 4 then
      Error "arp: unsupported hardware/protocol"
    else
      let op =
        match Wire.Reader.u16 r with
        | 1 -> Some Request
        | 2 -> Some Reply
        | _ -> None
      in
      match op with
      | None -> Error "arp: unknown opcode"
      | Some op ->
          let sender_mac = Eth.read_mac r in
          let sender_ip = Ipv4.of_int32 (Wire.Reader.u32 r) in
          let target_mac = Eth.read_mac r in
          let target_ip = Ipv4.of_int32 (Wire.Reader.u32 r) in
          Ok { op; sender_mac; sender_ip; target_mac; target_ip }
  with Wire.Truncated what -> Error (Printf.sprintf "arp: truncated %s" what)

let pp ppf t =
  match t.op with
  | Request ->
      Fmt.pf ppf "arp who-has %a tell %a" Ipv4.pp t.target_ip Ipv4.pp
        t.sender_ip
  | Reply ->
      Fmt.pf ppf "arp %a is-at %a" Ipv4.pp t.sender_ip Mac.pp t.sender_mac
