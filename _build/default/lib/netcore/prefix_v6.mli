(** IPv6 prefixes, mirroring {!Prefix} for the v6 address family. *)

type t

val make : Ipv6.t -> int -> t
(** [make addr len], host bits cleared. Raises outside [0, 128]. *)

val network : t -> Ipv6.t
val length : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val of_string : string -> t option
val of_string_exn : string -> t
val mem : Ipv6.t -> t -> bool
val subset : sub:t -> super:t -> bool
val bit : t -> int -> bool

val subnet : t -> int -> int -> t
(** [subnet p len n] is the [n]-th /[len] subprefix of [p] (experiment
    allocations out of the platform /32). *)

val pp : Format.formatter -> t -> unit
