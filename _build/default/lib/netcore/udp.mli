(** A minimal UDP codec, used by experiments that host services reachable
    from the simulated Internet (paper §2.1). Checksums are elided (legal
    for UDP over IPv4). *)

type t = { src_port : int; dst_port : int; payload : string }

val header_size : int
val encode : t -> string
val decode : string -> (t, string) result
val pp : Format.formatter -> t -> unit
