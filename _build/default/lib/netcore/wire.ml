(* Byte-level big-endian reader/writer shared by every wire codec in the
   repository (Ethernet, ARP, IPv4, ICMP, UDP, and all of BGP). *)

exception Truncated of string
(** Raised by {!Reader} operations that run past the end of input. *)

(** Growable big-endian byte buffer. *)
module Writer = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create ?(capacity = 64) () =
    { buf = Bytes.create (max capacity 1); len = 0 }

  let length w = w.len

  let ensure w extra =
    let needed = w.len + extra in
    if needed > Bytes.length w.buf then begin
      let capacity = ref (Bytes.length w.buf * 2) in
      while !capacity < needed do
        capacity := !capacity * 2
      done;
      let buf = Bytes.create !capacity in
      Bytes.blit w.buf 0 buf 0 w.len;
      w.buf <- buf
    end

  let u8 w v =
    ensure w 1;
    Bytes.unsafe_set w.buf w.len (Char.chr (v land 0xff));
    w.len <- w.len + 1

  let u16 w v =
    ensure w 2;
    Bytes.set_uint16_be w.buf w.len (v land 0xffff);
    w.len <- w.len + 2

  let u32 w v =
    ensure w 4;
    Bytes.set_int32_be w.buf w.len v;
    w.len <- w.len + 4

  let u64 w v =
    ensure w 8;
    Bytes.set_int64_be w.buf w.len v;
    w.len <- w.len + 8

  let string w s =
    let n = String.length s in
    ensure w n;
    Bytes.blit_string s 0 w.buf w.len n;
    w.len <- w.len + n

  let bytes w b = string w (Bytes.unsafe_to_string b)

  (* Reserve [n] bytes and return their offset, for length fields that are
     only known once the body has been written. *)
  let reserve w n =
    let off = w.len in
    ensure w n;
    Bytes.fill w.buf off n '\000';
    w.len <- w.len + n;
    off

  let patch_u8 w off v = Bytes.set_uint8 w.buf off (v land 0xff)
  let patch_u16 w off v = Bytes.set_uint16_be w.buf off (v land 0xffff)

  let contents w = Bytes.sub_string w.buf 0 w.len

  let clear w = w.len <- 0
end

(** Bounded big-endian cursor over an immutable string. *)
module Reader = struct
  type t = { data : string; mutable pos : int; limit : int }

  let of_string ?(pos = 0) ?len data =
    let limit =
      match len with None -> String.length data | Some l -> pos + l
    in
    if pos < 0 || limit > String.length data || pos > limit then
      invalid_arg "Wire.Reader.of_string: bounds";
    { data; pos; limit }

  let remaining r = r.limit - r.pos
  let eof r = r.pos >= r.limit
  let position r = r.pos

  let need r n what = if remaining r < n then raise (Truncated what)

  let u8 r =
    need r 1 "u8";
    let v = Char.code (String.unsafe_get r.data r.pos) in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    need r 2 "u16";
    let v = String.get_uint16_be r.data r.pos in
    r.pos <- r.pos + 2;
    v

  let u32 r =
    need r 4 "u32";
    let v = String.get_int32_be r.data r.pos in
    r.pos <- r.pos + 4;
    v

  let u64 r =
    need r 8 "u64";
    let v = String.get_int64_be r.data r.pos in
    r.pos <- r.pos + 8;
    v

  let take r n =
    need r n "take";
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let take_rest r = take r (remaining r)

  (* A sub-reader over the next [n] bytes; the parent cursor skips them. *)
  let sub r n =
    need r n "sub";
    let s = { data = r.data; pos = r.pos; limit = r.pos + n } in
    r.pos <- r.pos + n;
    s

  let skip r n =
    need r n "skip";
    r.pos <- r.pos + n
end
