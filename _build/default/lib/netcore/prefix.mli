(** IPv4 prefixes in CIDR notation.

    The network address is stored with host bits cleared, so structural
    equality coincides with prefix equality. *)

type t
(** An IPv4 prefix. *)

val make : Ipv4.t -> int -> t
(** [make addr len] is [addr/len] with host bits cleared. Raises
    [Invalid_argument] when [len] is outside [0, 32]. *)

val network : t -> Ipv4.t
(** The (masked) network address. *)

val length : t -> int
(** The prefix length. *)

val netmask : t -> int32

val equal : t -> t -> bool
val compare : t -> t -> int

val to_string : t -> string
(** ["a.b.c.d/len"]. *)

val of_string : string -> t option
val of_string_exn : string -> t

val mem : Ipv4.t -> t -> bool
(** [mem addr p] holds when [addr] is inside [p]. *)

val subset : sub:t -> super:t -> bool
(** [subset ~sub ~super] holds when every address of [sub] is in [super]
    (used for allocation-ownership checks). *)

val bit : t -> int -> bool
(** [bit p i] is bit [i] of the network address, [0 <= i < length p]. *)

val host : t -> int -> Ipv4.t
(** [host p n] is the [n]-th address inside [p] (0 is the network address).
    Raises [Invalid_argument] when out of range. *)

val size : t -> int
(** Number of addresses covered. *)

val split : t -> t * t
(** The two half-length subprefixes. Raises on a /32. *)

val subnets : t -> int -> t list
(** [subnets p len] enumerates the subprefixes of [p] of length [len]. *)

val default : t
(** [0.0.0.0/0]. *)

val pp : Format.formatter -> t -> unit
