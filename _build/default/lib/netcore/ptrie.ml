(* A binary trie keyed by bit-prefixes, used for every routing and
   forwarding table in the repository (longest-prefix match is the data
   plane's core operation, and per-neighbor FIBs are what Figure 6a sizes).

   The structure is functorized over the key so the same code backs IPv4 and
   IPv6 tables. *)

module type KEY = sig
  type t

  val length : t -> int
  (** Number of significant bits. *)

  val bit : t -> int -> bool
  (** [bit k i] is bit [i] (0 = most significant); [i < length k]. *)

  val equal : t -> t -> bool
end

module Make (K : KEY) = struct
  type 'a t =
    | Empty
    | Node of { binding : (K.t * 'a) option; zero : 'a t; one : 'a t }

  let empty = Empty
  let is_empty t = t = Empty

  (* Smart constructor that collapses fully-empty nodes so that removal
     leaves no dead branches behind. *)
  let node binding zero one =
    match (binding, zero, one) with
    | None, Empty, Empty -> Empty
    | _ -> Node { binding; zero; one }

  let add key value t =
    let len = K.length key in
    let rec go depth t =
      match t with
      | Empty ->
          if depth = len then node (Some (key, value)) Empty Empty
          else if K.bit key depth then node None Empty (go (depth + 1) Empty)
          else node None (go (depth + 1) Empty) Empty
      | Node { binding; zero; one } ->
          if depth = len then node (Some (key, value)) zero one
          else if K.bit key depth then node binding zero (go (depth + 1) one)
          else node binding (go (depth + 1) zero) one
    in
    go 0 t

  let remove key t =
    let len = K.length key in
    let rec go depth t =
      match t with
      | Empty -> Empty
      | Node { binding; zero; one } ->
          if depth = len then node None zero one
          else if K.bit key depth then node binding zero (go (depth + 1) one)
          else node binding (go (depth + 1) zero) one
    in
    go 0 t

  let find key t =
    let len = K.length key in
    let rec go depth t =
      match t with
      | Empty -> None
      | Node { binding; zero; one } ->
          if depth = len then
            match binding with
            | Some (k, v) when K.equal k key -> Some v
            | _ -> None
          else go (depth + 1) (if K.bit key depth then one else zero)
    in
    go 0 t

  let mem key t = find key t <> None

  (* The binding of the longest stored key that is a prefix of [key]. *)
  let longest_match key t =
    let len = K.length key in
    let rec go depth best t =
      match t with
      | Empty -> best
      | Node { binding; zero; one } ->
          let best = match binding with Some b -> Some b | None -> best in
          if depth = len then best
          else go (depth + 1) best (if K.bit key depth then one else zero)
    in
    go 0 None t

  (* All stored bindings whose key is a prefix of [key], shortest first. *)
  let matches key t =
    let len = K.length key in
    let rec go depth acc t =
      match t with
      | Empty -> List.rev acc
      | Node { binding; zero; one } ->
          let acc = match binding with Some b -> b :: acc | None -> acc in
          if depth = len then List.rev acc
          else go (depth + 1) acc (if K.bit key depth then one else zero)
    in
    go 0 [] t

  let rec fold f t acc =
    match t with
    | Empty -> acc
    | Node { binding; zero; one } ->
        let acc =
          match binding with Some (k, v) -> f k v acc | None -> acc
        in
        fold f one (fold f zero acc)

  let iter f t = fold (fun k v () -> f k v) t ()

  let cardinal t = fold (fun _ _ n -> n + 1) t 0

  let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

  let of_list bindings =
    List.fold_left (fun t (k, v) -> add k v t) empty bindings

  let rec map f t =
    match t with
    | Empty -> Empty
    | Node { binding; zero; one } ->
        Node
          {
            binding = Option.map (fun (k, v) -> (k, f k v)) binding;
            zero = map f zero;
            one = map f one;
          }

  let rec filter f t =
    match t with
    | Empty -> Empty
    | Node { binding; zero; one } ->
        let binding =
          match binding with
          | Some (k, v) when f k v -> Some (k, v)
          | _ -> None
        in
        node binding (filter f zero) (filter f one)
end

(* IPv4 routing tables. *)
module V4 = Make (struct
  type t = Prefix.t

  let length = Prefix.length
  let bit = Prefix.bit
  let equal = Prefix.equal
end)

(* IPv6 routing tables. *)
module V6 = Make (struct
  type t = Prefix_v6.t

  let length = Prefix_v6.length
  let bit = Prefix_v6.bit
  let equal = Prefix_v6.equal
end)

(* Longest-prefix match against a host address. *)
let lookup_v4 addr table = V4.longest_match (Prefix.make addr 32) table
let lookup_v6 addr table = V6.longest_match (Prefix_v6.make addr 128) table
