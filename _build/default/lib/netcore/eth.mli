(** Ethernet II frames (the 14-byte header; no FCS). *)

type ethertype = Ipv4 | Arp | Ipv6 | Other of int

val ethertype_to_int : ethertype -> int
val ethertype_of_int : int -> ethertype
val pp_ethertype : Format.formatter -> ethertype -> unit

type t = {
  dst : Mac.t;
  src : Mac.t;
  ethertype : ethertype;
  payload : string;
}
(** A frame. *)

val header_size : int

val write_mac : Wire.Writer.t -> Mac.t -> unit
(** Serialize a MAC (shared with the ARP codec). *)

val read_mac : Wire.Reader.t -> Mac.t

val encode : t -> string

val decode : string -> (t, string) result
(** [Error] describes the malformation (e.g. truncation). *)

val pp : Format.formatter -> t -> unit
