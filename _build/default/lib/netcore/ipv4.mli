(** IPv4 addresses.

    Addresses are totally ordered as unsigned 32-bit integers, so
    [255.0.0.1 > 1.0.0.1] as network operators expect. *)

type t
(** An IPv4 address. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Unsigned comparison. *)

val of_int32 : int32 -> t
(** Interpret [v] as a big-endian address. *)

val to_int32 : t -> int32

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is [a.b.c.d]. Raises [Invalid_argument] if any octet
    is outside [0, 255]. *)

val octets : t -> int * int * int * int

val to_string : t -> string
(** Dotted-quad rendering. *)

val of_string : string -> t option
(** Parse dotted-quad notation; [None] on malformed input. *)

val of_string_exn : string -> t
(** Like {!of_string}; raises [Invalid_argument] on malformed input. *)

val any : t
(** [0.0.0.0]. *)

val broadcast : t
(** [255.255.255.255]. *)

val localhost : t
(** [127.0.0.1]. *)

val add : t -> int -> t
(** Offset arithmetic, wrapping modulo 2{^32}; used by address pools. *)

val succ : t -> t

val diff : t -> t -> int
(** [diff a b] is the unsigned distance from [b] to [a]. *)

val hash : t -> int

val is_private : t -> bool
(** RFC 1918 space or loopback. *)

val pp : Format.formatter -> t -> unit
