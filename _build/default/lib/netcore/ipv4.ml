(* IPv4 addresses represented as big-endian [int32]. All arithmetic
   comparisons treat addresses as unsigned. *)

type t = int32

let equal = Int32.equal

(* Unsigned comparison: flip the sign bit and compare signed. *)
let compare a b =
  Int32.compare (Int32.logxor a Int32.min_int) (Int32.logxor b Int32.min_int)

let of_int32 v = v
let to_int32 v = v

let of_octets a b c d =
  let ok x = x >= 0 && x <= 255 in
  if not (ok a && ok b && ok c && ok d) then invalid_arg "Ipv4.of_octets";
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d))

let octets v =
  let byte n = Int32.to_int (Int32.logand (Int32.shift_right_logical v n) 0xffl) in
  (byte 24, byte 16, byte 8, byte 0)

let to_string v =
  let a, b, c, d = octets v in
  Printf.sprintf "%d.%d.%d.%d" a b c d

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let parse x =
        if x = "" || String.length x > 3 then None
        else
          match int_of_string_opt x with
          | Some v when v >= 0 && v <= 255 -> Some v
          | _ -> None
      in
      match (parse a, parse b, parse c, parse d) with
      | Some a, Some b, Some c, Some d -> Some (of_octets a b c d)
      | _ -> None)
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string_exn: %S" s)

let any = 0l
let broadcast = 0xffffffffl
let localhost = of_octets 127 0 0 1

(* Offset arithmetic, used by address pools. Wraps modulo 2^32. *)
let add v n = Int32.add v (Int32.of_int n)
let succ v = add v 1

let diff a b = Int32.to_int (Int32.sub a b) land 0xffffffff

let hash v = Int32.to_int v land max_int

let is_private v =
  let a, b, _, _ = octets v in
  a = 10 || (a = 172 && b >= 16 && b < 32) || (a = 192 && b = 168) || a = 127

let pp ppf v = Fmt.string ppf (to_string v)
