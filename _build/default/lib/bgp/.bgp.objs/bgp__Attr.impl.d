lib/bgp/attr.ml: Asn Aspath Community Fmt Int Ipv4 Ipv6 Large_community List Netcore Prefix_v6 String
