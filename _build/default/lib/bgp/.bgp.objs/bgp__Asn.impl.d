lib/bgp/asn.ml: Fmt Int
