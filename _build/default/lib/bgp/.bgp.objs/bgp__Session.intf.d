lib/bgp/session.mli: Asn Capability Codec Fsm Ipv4 Msg Netcore
