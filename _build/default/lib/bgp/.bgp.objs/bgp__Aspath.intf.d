lib/bgp/aspath.mli: Asn Format
