lib/bgp/large_community.ml: Fmt Int Printf String
