lib/bgp/capability.ml: Asn Fmt Int32 List Netcore Wire
