lib/bgp/fsm.ml: Fmt Msg Printf
