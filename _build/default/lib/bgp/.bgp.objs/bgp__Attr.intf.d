lib/bgp/attr.mli: Asn Aspath Community Format Ipv4 Ipv6 Large_community Netcore Prefix_v6
