lib/bgp/community.ml: Fmt Int Int32 Printf String
