lib/bgp/session.ml: Asn Capability Codec Fsm Ipv4 List Msg Netcore
