lib/bgp/msg.ml: Asn Attr Capability Fmt Ipv4 Netcore Prefix
