lib/bgp/msg.mli: Asn Attr Capability Format Netcore
