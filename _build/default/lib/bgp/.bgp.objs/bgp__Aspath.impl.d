lib/bgp/aspath.ml: Asn Fmt List String
