lib/bgp/codec.mli: Msg
