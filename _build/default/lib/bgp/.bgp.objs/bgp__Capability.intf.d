lib/bgp/capability.mli: Asn Format
