lib/bgp/large_community.mli: Format
