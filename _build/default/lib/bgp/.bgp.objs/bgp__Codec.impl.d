lib/bgp/codec.ml: Asn Aspath Attr Capability Community Int32 Ipv4 Ipv6 Large_community List Msg Netcore Prefix Prefix_v6 Printf String Wire
