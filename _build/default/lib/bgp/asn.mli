(** Autonomous system numbers (2-byte and 4-byte, RFC 6793).

    PEERING operates eight ASNs, three of them 4-byte (paper §4.2). *)

type t

val of_int : int -> t
(** Raises [Invalid_argument] outside [0, 2{^32}). *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val as_trans : int
(** AS_TRANS (23456): stands in for a 4-byte ASN when talking to a
    2-byte-only speaker. *)

val is_4byte : t -> bool
val is_private : t -> bool
val is_reserved : t -> bool

val to_string : t -> string
(** RFC 5396 "asplain" notation. *)

val of_string : string -> t option
val pp : Format.formatter -> t -> unit
