(** RFC 8092 large communities: three 32-bit words, exposed to experiments
    as a per-grant capability (paper §4.7). *)

type t = { global : int; data1 : int; data2 : int }

val make : int -> int -> int -> t
(** Raises [Invalid_argument] when a word exceeds 32 bits. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_string : t -> string
(** ["global:data1:data2"]. *)

val of_string : string -> t option
val pp : Format.formatter -> t -> unit
