(* RFC 8092 large communities: three 32-bit words. PEERING exposes them as a
   per-experiment capability (paper §4.7). *)

type t = { global : int; data1 : int; data2 : int }

let word v what =
  if v < 0 || v > 0xffffffff then
    invalid_arg (Printf.sprintf "Large_community.make: %s" what);
  v

let make global data1 data2 =
  { global = word global "global"; data1 = word data1 "data1"; data2 = word data2 "data2" }

let equal a b = a.global = b.global && a.data1 = b.data1 && a.data2 = b.data2

let compare a b =
  match Int.compare a.global b.global with
  | 0 -> (
      match Int.compare a.data1 b.data1 with
      | 0 -> Int.compare a.data2 b.data2
      | c -> c)
  | c -> c

let to_string t = Printf.sprintf "%d:%d:%d" t.global t.data1 t.data2

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c ] -> (
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
      | Some a, Some b, Some c
        when a >= 0 && a <= 0xffffffff && b >= 0 && b <= 0xffffffff && c >= 0
             && c <= 0xffffffff ->
          Some (make a b c)
      | _ -> None)
  | _ -> None

let pp ppf t = Fmt.string ppf (to_string t)
