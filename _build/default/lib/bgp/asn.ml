(* Autonomous system numbers. Both 2-byte and 4-byte (RFC 6793) ASNs are
   plain non-negative integers; PEERING itself operates eight ASNs including
   three 4-byte ones (paper §4.2). *)

type t = int

let of_int v =
  if v < 0 || v > 0xffffffff then invalid_arg "Asn.of_int";
  v

let to_int v = v
let equal = Int.equal
let compare = Int.compare
let hash v = v

(* AS_TRANS (RFC 6793): stands in for a 4-byte ASN when talking to a
   2-byte-only speaker. *)
let as_trans = 23456

let is_4byte v = v > 0xffff

let is_private v = (v >= 64512 && v <= 65534) || (v >= 4200000000 && v <= 4294967294)

let is_reserved v = v = 0 || v = 65535 || v = 0xffffffff

let to_string v =
  (* RFC 5396 "asplain" notation. *)
  string_of_int v

let of_string s =
  match int_of_string_opt s with
  | Some v when v >= 0 && v <= 0xffffffff -> Some v
  | _ -> None

let pp ppf v = Fmt.string ppf (to_string v)
