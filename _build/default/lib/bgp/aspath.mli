(** AS paths (RFC 4271 §5.1.2): ordered AS_SEQUENCE and unordered AS_SET
    segments. Prepending and poisoning — the manipulations PEERING
    experiments perform most (paper §7.1) — are first-class. *)

type segment = Seq of Asn.t list | Set of Asn.t list

type t = segment list
(** A path; the concrete representation is exposed for pattern matching in
    codecs and tests. *)

val empty : t

val of_asns : Asn.t list -> t
(** A single sequence segment (the common case). *)

val to_asns : t -> Asn.t list
(** All ASNs in order of appearance, sets flattened. *)

val length : t -> int
(** Decision-process length: each sequence AS counts 1, a whole set counts
    1 (RFC 4271 §9.1.2.2.a). *)

val contains : Asn.t -> t -> bool
(** Loop detection / poisoning check. *)

val first : t -> Asn.t option
(** The neighbor-most AS (eBGP validation). *)

val origin : t -> Asn.t option
(** The rightmost AS of the final sequence; [None] for aggregates. *)

val prepend : Asn.t -> t -> t
val prepend_n : Asn.t -> int -> t -> t

val poison : self:Asn.t -> Asn.t list -> t -> t
(** [poison ~self victims t] emits [self; victims...; self] so the victims'
    loop detection discards the route while the origin stays [self]. *)

val poisoned : self:Asn.t -> t -> Asn.t list
(** ASNs other than [self] appearing in the path — counted against the
    poisoning capability by the enforcement engine. *)

val equal : t -> t -> bool
(** Set segments compare unordered. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
