(** RFC 1997 communities: 32-bit labels on announcements.

    vBGP's export control is built on them: experiments tag announcements
    with (PoP, neighbor) whitelist/blacklist communities to choose which
    neighbors hear them (paper §3.2.1). *)

type t

val make : int -> int -> t
(** [make asn value], both 16-bit. Raises when out of range. *)

val of_int32 : int32 -> t
val to_int32 : t -> int32

val asn : t -> int
(** The high 16 bits. *)

val value : t -> int
(** The low 16 bits. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val no_export : t
val no_advertise : t
val no_export_subconfed : t

val is_well_known : t -> bool

val to_string : t -> string
(** ["asn:value"], or the well-known name. *)

val of_string : string -> t option
val of_string_exn : string -> t
val pp : Format.formatter -> t -> unit
