(* AS paths (RFC 4271 §5.1.2): ordered AS_SEQUENCE and unordered AS_SET
   segments. Prepending and poisoning — the manipulations PEERING experiments
   perform most (paper §7.1) — are first-class operations here. *)

type segment = Seq of Asn.t list | Set of Asn.t list

type t = segment list

let empty = []

let of_asns asns = match asns with [] -> [] | _ -> [ Seq asns ]

(* All ASNs in order of appearance (sets flattened in place). *)
let to_asns t =
  List.concat_map (function Seq l -> l | Set l -> l) t

(* Path length for the decision process: each AS in a sequence counts 1, a
   whole set counts 1 (RFC 4271 §9.1.2.2.a). *)
let length t =
  List.fold_left
    (fun n seg -> match seg with Seq l -> n + List.length l | Set _ -> n + 1)
    0 t

let contains asn t = List.exists (Asn.equal asn) (to_asns t)

(* First AS of the path — the neighbor that sent it (for eBGP validation). *)
let first t =
  match t with
  | Seq (a :: _) :: _ -> Some a
  | _ -> None

(* Origin AS: rightmost AS of the final sequence. [None] when the path ends
   in a set (aggregate) or is empty. *)
let origin t =
  match List.rev t with
  | Seq asns :: _ -> (
      match List.rev asns with a :: _ -> Some a | [] -> None)
  | _ -> None

let prepend asn t =
  match t with
  | Seq asns :: rest when List.length asns < 254 -> Seq (asn :: asns) :: rest
  | _ -> Seq [ asn ] :: t

let prepend_n asn n t =
  let rec go n t = if n <= 0 then t else go (n - 1) (prepend asn t) in
  go n t

(* Poison [victims]: emit [self; victims...; self] so the victims' loop
   detection discards the route while the origin stays [self]. *)
let poison ~self victims t =
  match t with
  | [] -> [ Seq ((self :: victims) @ [ self ]) ]
  | _ -> Seq ((self :: victims) @ [ self ]) :: t

(* ASNs other than [self] appearing in the path: in an experiment
   announcement these are poisoned ASes (an experiment has no business
   placing third-party ASNs in its path otherwise), counted by the
   capability framework. *)
let poisoned ~self t =
  to_asns t
  |> List.filter (fun a -> not (Asn.equal a self))
  |> List.sort_uniq Asn.compare

let equal a b =
  let seg_equal x y =
    match (x, y) with
    | Seq l1, Seq l2 -> List.equal Asn.equal l1 l2
    | Set l1, Set l2 ->
        List.equal Asn.equal
          (List.sort Asn.compare l1)
          (List.sort Asn.compare l2)
    | _ -> false
  in
  List.equal seg_equal a b

let to_string t =
  let seg = function
    | Seq l -> String.concat " " (List.map Asn.to_string l)
    | Set l -> "{" ^ String.concat "," (List.map Asn.to_string l) ^ "}"
  in
  String.concat " " (List.map seg t)

let pp ppf t = Fmt.string ppf (to_string t)
