(* RFC 1997 communities: 32-bit labels attached to announcements. vBGP's
   export control is built on them — an experiment tags an announcement with
   (pop, neighbor) whitelist or blacklist communities to choose exactly which
   neighbors hear it (paper §3.2.1). *)

type t = int (* 32-bit value, high 16 = ASN, low 16 = local value *)

let make asn value =
  if asn < 0 || asn > 0xffff then invalid_arg "Community.make: asn";
  if value < 0 || value > 0xffff then invalid_arg "Community.make: value";
  (asn lsl 16) lor value

let of_int32 v = Int32.to_int v land 0xffffffff
let to_int32 v = Int32.of_int v
let asn v = v lsr 16
let value v = v land 0xffff
let equal = Int.equal
let compare = Int.compare

(* Well-known communities (RFC 1997). *)
let no_export = 0xffffff01
let no_advertise = 0xffffff02
let no_export_subconfed = 0xffffff03

let is_well_known v = v lsr 16 = 0xffff

let to_string v =
  if v = no_export then "no-export"
  else if v = no_advertise then "no-advertise"
  else if v = no_export_subconfed then "no-export-subconfed"
  else Printf.sprintf "%d:%d" (asn v) (value v)

let of_string s =
  match s with
  | "no-export" -> Some no_export
  | "no-advertise" -> Some no_advertise
  | "no-export-subconfed" -> Some no_export_subconfed
  | _ -> (
      match String.split_on_char ':' s with
      | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b when a >= 0 && a <= 0xffff && b >= 0 && b <= 0xffff
            ->
              Some (make a b)
          | _ -> None)
      | _ -> None)

let of_string_exn s =
  match of_string s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Community.of_string_exn: %S" s)

let pp ppf v = Fmt.string ppf (to_string v)
