(* The `peering` command-line tool: operator- and experimenter-facing entry
   points to the simulated platform. Mirrors the workflows the paper
   describes — spinning up a testbed, inspecting the census, querying route
   propagation, rendering intent-based configuration, and troubleshooting
   filters — without writing OCaml.

   Usage: dune exec bin/peering_cli.exe -- <command> [options]
*)

open Cmdliner
open Bgp

let asn_of_int = Asn.of_int

(* -- demo: end-to-end platform walkthrough -------------------------------- *)

let run_demo pops_count transits peers seconds =
  let open Peering in
  Fmt.pr "building a %d-PoP platform (%d transits + %d peers per PoP)...@."
    pops_count transits peers;
  let graph =
    Topo.As_graph.generate
      ~params:{ Topo.As_graph.default_gen with transit = 12; stub = 80 }
      ()
  in
  let stubs =
    List.filter
      (fun a ->
        match Topo.As_graph.node graph a with
        | Some n -> n.Topo.As_graph.tier = 3
        | None -> false)
      (Topo.As_graph.asns graph)
    |> List.sort Asn.compare
  in
  let origins =
    Topo.Internet.assign_prefixes
      ~base:(Netcore.Prefix.of_string_exn "192.168.0.0/16")
      (List.filteri (fun i _ -> i < 30) stubs)
  in
  let internet = Topo.Internet.create graph ~origins in
  let platform = Platform.create () in
  let pops =
    List.init pops_count (fun i ->
        let pop =
          Platform.add_pop platform
            ~name:(Printf.sprintf "pop%02d" (i + 1))
            ~site:(if i mod 2 = 0 then Pop.Ixp else Pop.University) ()
        in
        ignore (Platform.populate_pop platform ~pop ~internet ~transits ~peers ());
        pop)
  in
  Platform.run platform ~seconds:10.;
  if pops_count > 1 then Platform.connect_backbone platform;
  Platform.run platform ~seconds:10.;
  List.iter
    (fun pop ->
      Fmt.pr "  %s (%s): %d neighbors, %d routes@." (Pop.name pop)
        (Pop.site_to_string (Pop.site pop))
        (Pop.neighbor_count pop)
        (Vbgp.Router.route_count (Pop.router pop)))
    pops;
  (* One experiment, connected to the first PoP. *)
  match
    Platform.submit platform
      (Approval.proposal ~title:"cli-demo" ~team:"cli" ~goals:"demo" ())
  with
  | Platform.Denied reason -> Fmt.epr "proposal denied: %s@." reason
  | Platform.Granted record ->
      let grant = record.Approval.grant in
      let kit = Toolkit.create ~engine:(Platform.engine platform) ~grant in
      let first = List.hd pops in
      ignore (Toolkit.open_tunnel kit first);
      Toolkit.start_session kit ~pop:(Pop.name first);
      Platform.run platform ~seconds:10.;
      let prefix = List.hd grant.Vbgp.Control_enforcer.prefixes in
      Toolkit.announce kit prefix;
      Platform.run platform ~seconds:seconds;
      Fmt.pr "experiment %s: %d routes visible, %a announced to %d/%d \
              neighbors@."
        grant.Vbgp.Control_enforcer.name
        (Toolkit.route_count kit ~pop:(Pop.name first))
        Netcore.Prefix.pp prefix
        (List.length
           (List.filter
              (fun h -> Neighbor_host.heard_route h prefix <> None)
              (Pop.neighbors first)))
        (Pop.neighbor_count first);
      (* Exchange a little traffic so the attribution table has rows. *)
      (match Pop.neighbors first with
      | h :: _ ->
          Neighbor_host.send_packet h
            ~src:(Netcore.Ipv4.of_string_exn "192.168.0.9")
            ~dst:(Netcore.Prefix.host prefix 1) "hello";
          Platform.run platform ~seconds:2.
      | [] -> ());
      Fmt.pr "@.per-experiment attribution (PlanetFlow-style, §3.1):@.";
      List.iter
        (fun (name, out, bytes, inn) ->
          Fmt.pr "  %-16s out=%d pkts (%d B)  in=%d pkts@." name out bytes inn)
        (Vbgp.Router.attribution (Pop.router first));
      Fmt.pr "@.%s" (Toolkit.cli kit "show protocols");
      Fmt.pr "@.trace tail:@.";
      let entries = Sim.Trace.entries (Platform.trace platform) in
      let n = List.length entries in
      List.iteri
        (fun i e ->
          if i >= n - 8 then Fmt.pr "%a@." Sim.Trace.pp_entry e)
        entries

let demo_cmd =
  let pops =
    Arg.(value & opt int 2 & info [ "pops" ] ~doc:"Number of PoPs to build.")
  in
  let transits =
    Arg.(value & opt int 2 & info [ "transits" ] ~doc:"Transits per PoP.")
  in
  let peers =
    Arg.(value & opt int 3 & info [ "peers" ] ~doc:"Bilateral peers per PoP.")
  in
  let seconds =
    Arg.(
      value & opt float 5.
      & info [ "seconds" ] ~doc:"Simulated seconds to run after announcing.")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Build a platform, run one experiment end to end.")
    Term.(const run_demo $ pops $ transits $ peers $ seconds)

(* -- census: §4.2 connectivity summary ------------------------------------- *)

let run_census seed =
  let db = Topo.Peeringdb.generate ~seed () in
  Fmt.pr "unique peers: %d@." (List.length (Topo.Peeringdb.unique_peers db));
  Fmt.pr "%-12s %-8s %-10s@." "IXP" "peers" "bilateral";
  List.iter
    (fun (ixp, total, bilateral) ->
      Fmt.pr "%-12s %-8d %-10d@." ixp total bilateral)
    (Topo.Peeringdb.by_ixp db);
  Fmt.pr "@.peer types:@.";
  List.iter
    (fun (kind, count, frac) ->
      Fmt.pr "  %-20s %4d  %4.1f%%@."
        (Topo.As_graph.kind_to_string kind)
        count (frac *. 100.))
    (Topo.Peeringdb.type_census db)

let census_cmd =
  let seed =
    Arg.(value & opt int 3 & info [ "seed" ] ~doc:"Census generation seed.")
  in
  Cmd.v
    (Cmd.info "census" ~doc:"Print the §4.2-style connectivity census.")
    Term.(const run_census $ seed)

(* -- propagate: route propagation queries ----------------------------------- *)

let run_propagate transits stubs seed poison selective =
  let graph =
    Topo.As_graph.generate
      ~params:{ Topo.As_graph.default_gen with transit = transits; stub = stubs; seed }
      ()
  in
  let tier2 =
    List.filter
      (fun a ->
        match Topo.As_graph.node graph a with
        | Some n -> n.Topo.As_graph.tier = 2
        | None -> false)
      (Topo.As_graph.asns graph)
    |> List.sort Asn.compare
  in
  let origin = asn_of_int 47065 in
  Topo.As_graph.add_node graph ~asn:origin ~kind:Topo.As_graph.Education
    ~tier:3;
  Topo.As_graph.add_customer graph ~provider:(List.nth tier2 0)
    ~customer:origin;
  Topo.As_graph.add_customer graph ~provider:(List.nth tier2 1)
    ~customer:origin;
  let total = Topo.As_graph.node_count graph in
  let blocked = List.map asn_of_int poison in
  let scope =
    if selective then Topo.Internet.Only [ List.nth tier2 0 ]
    else Topo.Internet.All_neighbors
  in
  let p = Topo.Internet.propagate graph ~origin ~blocked ~scope in
  Fmt.pr "origin as%a over %d ASes (%d transits, %d stubs)@." Asn.pp origin
    total transits stubs;
  (if poison <> [] then
     Fmt.pr "poisoned: %s@."
       (String.concat ", " (List.map string_of_int poison)));
  if selective then Fmt.pr "announced selectively to as%a only@." Asn.pp (List.nth tier2 0);
  Fmt.pr "reach: %d/%d ASes@." (Topo.Internet.reach_count p - 1) (total - 1);
  (* Path length distribution. *)
  let lengths = Hashtbl.create 8 in
  List.iter
    (fun a ->
      match Topo.Internet.path p a with
      | Some path when List.length path > 1 ->
          let l = List.length path - 1 in
          Hashtbl.replace lengths l
            (1 + Option.value ~default:0 (Hashtbl.find_opt lengths l))
      | _ -> ())
    (Topo.As_graph.asns graph);
  Fmt.pr "AS-path length distribution (hops -> networks):@.";
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) lengths []
  |> List.sort compare
  |> List.iter (fun (l, c) -> Fmt.pr "  %d -> %d@." l c)

let propagate_cmd =
  let transits =
    Arg.(value & opt int 20 & info [ "transits" ] ~doc:"Mid-tier AS count.")
  in
  let stubs =
    Arg.(value & opt int 150 & info [ "stubs" ] ~doc:"Stub AS count.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Topology seed.") in
  let poison =
    Arg.(
      value & opt_all int []
      & info [ "poison" ] ~doc:"ASN to poison (repeatable).")
  in
  let selective =
    Arg.(
      value & flag
      & info [ "selective" ] ~doc:"Announce to the first transit only.")
  in
  Cmd.v
    (Cmd.info "propagate"
       ~doc:"Query announcement propagation over a synthetic Internet.")
    Term.(
      const run_propagate $ transits $ stubs $ seed $ poison $ selective)

(* -- render-config: intent-based templating ---------------------------------- *)

let run_render service =
  let open Peering in
  let platform = Platform.create () in
  let pop = Platform.add_pop platform ~name:"pop01" ~site:Pop.Ixp () in
  let n1 = Pop.add_transit pop ~asn:(asn_of_int 100) in
  let _n2 = Pop.add_peer pop ~asn:(asn_of_int 200) in
  ignore n1;
  Platform.run platform ~seconds:5.;
  (match
     Platform.submit platform
       (Approval.proposal ~title:"render" ~team:"cli" ~goals:"render" ())
   with
  | Platform.Granted _ -> ()
  | Platform.Denied r -> failwith r);
  let model = Config_model.of_platform platform in
  let intent = Option.get (Config_model.pop model "pop01") in
  let text =
    match service with
    | "bird" -> Template.render_bird ~version:1 intent
    | "openvpn" -> Template.render_openvpn ~version:1 intent
    | "enforcer" -> Template.render_policy ~version:1 intent
    | other -> Fmt.failwith "unknown service %S (bird|openvpn|enforcer)" other
  in
  print_string text

let render_cmd =
  let service =
    Arg.(
      value & pos 0 string "bird"
      & info [] ~docv:"SERVICE" ~doc:"bird, openvpn, or enforcer.")
  in
  Cmd.v
    (Cmd.info "render-config"
       ~doc:"Render intent-based configuration for a sample PoP.")
    Term.(const run_render $ service)

(* -- troubleshoot: Appendix A filter localization ------------------------------ *)

let run_troubleshoot coverage seed =
  let graph =
    Topo.As_graph.generate
      ~params:{ Topo.As_graph.default_gen with transit = 16; stub = 100; seed }
      ()
  in
  let tier2 =
    List.filter
      (fun a ->
        match Topo.As_graph.node graph a with
        | Some n -> n.Topo.As_graph.tier = 2
        | None -> false)
      (Topo.As_graph.asns graph)
    |> List.sort Asn.compare
  in
  let origin = asn_of_int 47065 in
  Topo.As_graph.add_node graph ~asn:origin ~kind:Topo.As_graph.Education
    ~tier:3;
  Topo.As_graph.add_customer graph ~provider:(List.hd tier2) ~customer:origin;
  (* Inject a fault at a random single-homed stub. *)
  let victim =
    List.find
      (fun a ->
        match Topo.As_graph.node graph a with
        | Some n ->
            n.Topo.As_graph.tier = 3
            && List.length (Topo.As_graph.providers graph a) = 1
            && Topo.As_graph.peers graph a = []
            && not (Asn.equal a origin)
        | None -> false)
      (List.sort Asn.compare (Topo.As_graph.asns graph))
  in
  let bad = List.hd (Topo.As_graph.providers graph victim) in
  let filters = [ (bad, victim) ] in
  let lg = Topo.Looking_glass.create ~coverage ~seed ~filters graph ~origin in
  Fmt.pr "fault: as%a -/-> as%a; looking glasses in %d networks@." Asn.pp bad
    Asn.pp victim
    (Topo.Looking_glass.host_count lg);
  let suspects = Topo.Looking_glass.localize lg ~origin in
  if suspects = [] then
    Fmt.pr
      "no looking glass observed the outage (the victim hosts none) — raise \
       --coverage@."
  else begin
    List.iteri
      (fun i s -> Fmt.pr "%2d. %a@." (i + 1) Topo.Looking_glass.pp_suspect s)
      suspects;
    Fmt.pr "fault covered: %b@."
      (Topo.Looking_glass.covers suspects ~filters)
  end

let troubleshoot_cmd =
  let coverage =
    Arg.(
      value & opt float 0.5
      & info [ "coverage" ] ~doc:"Fraction of ASes hosting looking glasses.")
  in
  let seed = Arg.(value & opt int 41 & info [ "seed" ] ~doc:"Scenario seed.") in
  Cmd.v
    (Cmd.info "troubleshoot"
       ~doc:"Localize a misbehaving route filter with looking glasses.")
    Term.(const run_troubleshoot $ coverage $ seed)

(* -------------------------------------------------------------------------- *)

let main =
  Cmd.group
    (Cmd.info "peering" ~version:"1.0.0"
       ~doc:"PEERING/vBGP testbed tooling (CoNEXT '19 reproduction).")
    [ demo_cmd; census_cmd; propagate_cmd; render_cmd; troubleshoot_cmd ]

let () = exit (Cmd.eval main)
