(* End-to-end integration tests: whole-platform scenarios exercising BGP
   sessions over the wire codec, enforcement, multiplexing, the data plane,
   and the backbone — the paper's headline claims as assertions. *)

open Netcore
open Bgp
open Peering

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let submit platform team =
  match
    Platform.submit platform
      (Approval.proposal ~title:team ~team ~goals:"integration test" ())
  with
  | Platform.Granted r -> r.Approval.grant
  | Platform.Denied reason -> failwith reason

let connect platform pop grant =
  let kit = Toolkit.create ~engine:(Platform.engine platform) ~grant in
  ignore (Toolkit.open_tunnel kit pop);
  Toolkit.start_session kit ~pop:(Pop.name pop);
  Platform.run platform ~seconds:10.;
  kit

(* One PoP against a generated Internet. *)
let build_world () =
  let graph =
    Topo.As_graph.generate
      ~params:{ Topo.As_graph.default_gen with transit = 8; stub = 40; seed = 5 }
      ()
  in
  let stubs =
    List.filter
      (fun a ->
        match Topo.As_graph.node graph a with
        | Some n -> n.Topo.As_graph.tier = 3
        | None -> false)
      (Topo.As_graph.asns graph)
    |> List.sort Asn.compare
  in
  let origins =
    Topo.Internet.assign_prefixes
      ~base:(pfx "192.168.0.0/16")
      (List.filteri (fun i _ -> i < 20) stubs)
  in
  let internet = Topo.Internet.create graph ~origins in
  let platform = Platform.create () in
  let pop = Platform.add_pop platform ~name:"pop01" ~site:Pop.Ixp () in
  let hosts =
    Platform.populate_pop platform ~pop ~internet ~transits:2 ~peers:2 ()
  in
  Platform.run platform ~seconds:10.;
  (platform, pop, hosts, origins)

let test_full_visibility () =
  let platform, pop, hosts, origins = build_world () in
  let grant = submit platform "vis" in
  let kit = connect platform pop grant in
  (* Every neighbor announced a route per origin prefix; the experiment
     must see them all (ADD-PATH), not just a best path. *)
  let expected =
    List.fold_left
      (fun acc h ->
        acc
        + List.length
            (Vbgp.Router.neighbor_routes (Pop.router pop)
               ~neighbor_id:(Neighbor_host.neighbor_id h)))
      0 hosts
  in
  checki "experiment sees every neighbor's path" expected
    (Toolkit.route_count kit ~pop:"pop01");
  checkb "multiple paths for one prefix" true
    (let dst = Prefix.host (fst (List.hd origins)) 1 in
     List.length (Toolkit.routes_for kit ~pop:"pop01" dst) >= 2)

let test_announcement_reaches_all_neighbors () =
  let platform, pop, hosts, _ = build_world () in
  let grant = submit platform "ann" in
  let kit = connect platform pop grant in
  let prefix = List.hd grant.Vbgp.Control_enforcer.prefixes in
  Toolkit.announce kit prefix;
  Platform.run platform ~seconds:5.;
  List.iter
    (fun h ->
      checkb "heard by neighbor" true (Neighbor_host.heard_route h prefix <> None))
    hosts;
  (* And the AS path everywhere is [mux; experiment]. *)
  List.iter
    (fun h ->
      match Neighbor_host.heard_route h prefix with
      | Some attrs ->
          checkb "mux-prepended path" true
            (match Attr.as_path attrs with
            | Some path ->
                Aspath.first path = Some (Platform.mux_asn platform)
                && Aspath.origin path
                   = Some (List.hd grant.Vbgp.Control_enforcer.asns)
            | None -> false)
      | None -> ())
    hosts

let test_parallel_experiments_isolation () =
  let platform, pop, hosts, _ = build_world () in
  let g1 = submit platform "one" in
  let g2 = submit platform "two" in
  let k1 = connect platform pop g1 in
  let k2 = connect platform pop g2 in
  let p1 = List.hd g1.Vbgp.Control_enforcer.prefixes in
  let p2 = List.hd g2.Vbgp.Control_enforcer.prefixes in
  (* Experiment 2 cannot announce experiment 1's prefix (hijack guard). *)
  Toolkit.announce k2 p1;
  Platform.run platform ~seconds:5.;
  List.iter
    (fun h ->
      checkb "cross-experiment hijack blocked" true
        (Neighbor_host.heard_route h p1 = None))
    hosts;
  (* Both can announce their own space in parallel. *)
  Toolkit.announce k1 p1;
  Toolkit.announce k2 p2;
  Platform.run platform ~seconds:5.;
  let h = List.hd hosts in
  checkb "exp1 prefix announced" true (Neighbor_host.heard_route h p1 <> None);
  checkb "exp2 prefix announced" true (Neighbor_host.heard_route h p2 <> None);
  (* Distinct origins on the two announcements. *)
  let origin prefix =
    match Neighbor_host.heard_route h prefix with
    | Some attrs -> Option.bind (Attr.as_path attrs) Aspath.origin
    | None -> None
  in
  checkb "distinct origin ASNs" true (origin p1 <> origin p2)

let test_data_plane_end_to_end () =
  let platform, pop, hosts, origins = build_world () in
  let grant = submit platform "data" in
  let kit = connect platform pop grant in
  let prefix = List.hd grant.Vbgp.Control_enforcer.prefixes in
  Toolkit.announce kit prefix;
  Platform.run platform ~seconds:5.;
  (* Outbound: a packet toward an Internet prefix leaves via the best
     route's neighbor. *)
  let dst = Prefix.host (fst (List.hd origins)) 1 in
  (match Toolkit.send_packet kit ~pop:"pop01" ~dst "outbound" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Platform.run platform ~seconds:5.;
  let delivered =
    List.exists
      (fun h ->
        List.exists
          (fun (p : Ipv4_packet.t) -> Ipv4.equal p.Ipv4_packet.dst dst)
          (Neighbor_host.received_packets h))
      hosts
  in
  checkb "outbound delivered to a neighbor" true delivered;
  (* Inbound: a neighbor sends to the experiment prefix; the experiment
     receives it with the neighbor's virtual MAC as frame source. *)
  let h = List.hd hosts in
  Neighbor_host.send_packet h ~src:(ip "192.168.0.200")
    ~dst:(Prefix.host prefix 1) "inbound";
  Platform.run platform ~seconds:5.;
  match Toolkit.received kit with
  | r :: _ ->
      let expected_mac =
        match
          Vbgp.Router.neighbor (Pop.router pop) (Neighbor_host.neighbor_id h)
        with
        | Some ns -> ns.Vbgp.Router.info.Vbgp.Neighbor.virtual_mac
        | None -> Mac.zero
      in
      checkb "ingress neighbor identified by MAC" true
        (Mac.equal r.Toolkit.src_mac expected_mac)
  | [] -> Alcotest.fail "no inbound packet"

let test_two_pop_backbone () =
  let platform = Platform.create () in
  let engine = Platform.engine platform in
  let pop_a = Platform.add_pop platform ~name:"popA" ~site:Pop.University () in
  let pop_b = Platform.add_pop platform ~name:"popB" ~site:Pop.Ixp () in
  let destination = pfx "192.168.0.0/24" in
  let n_a = Pop.add_transit pop_a ~asn:(asn 100) in
  let n_b = Pop.add_transit pop_b ~asn:(asn 200) in
  Neighbor_host.announce n_a [ (destination, Aspath.of_asns [ asn 100 ]) ];
  Neighbor_host.announce n_b [ (destination, Aspath.of_asns [ asn 200 ]) ];
  Platform.run platform ~seconds:5.;
  Platform.connect_backbone platform;
  Platform.run platform ~seconds:10.;
  let grant = submit platform "bb" in
  let kit = Toolkit.create ~engine ~grant in
  ignore (Toolkit.open_tunnel kit pop_a);
  Toolkit.start_session kit ~pop:"popA";
  Platform.run platform ~seconds:10.;
  (* Visibility across the backbone. *)
  let routes = Toolkit.routes_for kit ~pop:"popA" (Prefix.host destination 1) in
  checki "both PoPs' routes visible at A" 2 (List.length routes);
  (* Data via the remote neighbor. *)
  let via_remote =
    List.find_map
      (fun (r : Rib.Route.t) ->
        if Aspath.contains (asn 200) (Rib.Route.as_path r) then
          Rib.Route.next_hop r
        else None)
      routes
  in
  (match via_remote with
  | None -> Alcotest.fail "no route via remote neighbor"
  | Some via ->
      Toolkit.send_packet_via kit ~pop:"popA" ~via
        (Ipv4_packet.make
           ~src:(Prefix.host (List.hd grant.Vbgp.Control_enforcer.prefixes) 1)
           ~dst:(Prefix.host destination 1) ~protocol:Ipv4_packet.Udp "x");
      Platform.run platform ~seconds:5.;
      checki "delivered via remote PoP's neighbor" 1
        (List.length (Neighbor_host.received_packets n_b));
      checki "not via the local neighbor" 0
        (List.length (Neighbor_host.received_packets n_a)));
  (* Selective announcement to the remote neighbor only. *)
  let prefix = List.hd grant.Vbgp.Control_enforcer.prefixes in
  let id_b =
    Vbgp.Router.export_id (Pop.router pop_b)
      ~neighbor_id:(Neighbor_host.neighbor_id n_b)
  in
  Toolkit.announce kit ~announce_to:[ id_b ] prefix;
  Platform.run platform ~seconds:5.;
  checkb "remote neighbor heard" true (Neighbor_host.heard_route n_b prefix <> None);
  checkb "local neighbor did not" true (Neighbor_host.heard_route n_a prefix = None);
  (* Inbound from the remote PoP flows back over the backbone. *)
  Neighbor_host.send_packet n_b ~src:(ip "192.168.0.77")
    ~dst:(Prefix.host prefix 1) "inbound-from-b";
  Platform.run platform ~seconds:5.;
  checki "delivered across the backbone" 1 (List.length (Toolkit.received kit))

let test_session_loss_withdraws_routes () =
  let platform, pop, hosts, _ = build_world () in
  let grant = submit platform "loss" in
  let kit = connect platform pop grant in
  let prefix = List.hd grant.Vbgp.Control_enforcer.prefixes in
  Toolkit.announce kit prefix;
  Platform.run platform ~seconds:5.;
  let h = List.hd hosts in
  checkb "announced" true (Neighbor_host.heard_route h prefix <> None);
  (* The experiment disconnects: its routes must be withdrawn upstream. *)
  Toolkit.stop_session kit ~pop:"pop01";
  Platform.run platform ~seconds:10.;
  checkb "withdrawn after session loss" true
    (Neighbor_host.heard_route h prefix = None)

let test_neighbor_flap () =
  let platform, pop, hosts, _ = build_world () in
  let grant = submit platform "flap" in
  let kit = connect platform pop grant in
  let before = Toolkit.route_count kit ~pop:"pop01" in
  (* A neighbor session dies: its routes vanish from the experiment RIB. *)
  let h = List.hd hosts in
  let lost =
    List.length
      (Vbgp.Router.neighbor_routes (Pop.router pop)
         ~neighbor_id:(Neighbor_host.neighbor_id h))
  in
  Session.stop (Neighbor_host.session h);
  Platform.run platform ~seconds:10.;
  checki "neighbor's routes withdrawn from experiment" (before - lost)
    (Toolkit.route_count kit ~pop:"pop01")

let test_misbehaving_experiment_isolation () =
  (* §4.7 "Impact of misbehaving experiments": one experiment flooding
     announcements is rate-limited without disturbing another
     experiment's control plane. *)
  let platform, pop, hosts, _ = build_world () in
  let g_noisy = submit platform "noisy" in
  let g_quiet = submit platform "quiet" in
  let k_noisy = connect platform pop g_noisy in
  let k_quiet = connect platform pop g_quiet in
  let p_noisy = List.hd g_noisy.Vbgp.Control_enforcer.prefixes in
  let p_quiet = List.hd g_quiet.Vbgp.Control_enforcer.prefixes in
  (* The noisy experiment burns far past its daily budget. *)
  for _ = 1 to 300 do
    Toolkit.announce k_noisy p_noisy
  done;
  Platform.run platform ~seconds:10.;
  (* The quiet experiment still works normally. *)
  Toolkit.announce k_quiet p_quiet;
  Platform.run platform ~seconds:5.;
  let h = List.hd hosts in
  checkb "quiet experiment unaffected" true
    (Neighbor_host.heard_route h p_quiet <> None);
  (* And the noisy one was clamped to its budget. *)
  let accepted, rejected =
    Vbgp.Control_enforcer.stats
      (Vbgp.Router.control_enforcer (Pop.router pop))
  in
  checkb "flood rejected beyond budget" true (rejected >= 300 - 144);
  checkb "within-budget updates processed" true (accepted >= 144)

let test_neighbor_flap_recovery () =
  (* A neighbor session flaps: routes vanish, then come back in full when
     the session re-establishes (BGP full-table exchange). *)
  let platform, pop, hosts, _ = build_world () in
  let grant = submit platform "flap2" in
  let kit = connect platform pop grant in
  let before = Toolkit.route_count kit ~pop:"pop01" in
  let h = List.hd hosts in
  Session.stop (Neighbor_host.session h);
  Platform.run platform ~seconds:10.;
  checkb "routes dropped while down" true
    (Toolkit.route_count kit ~pop:"pop01" < before);
  (* Restart the neighbor's session (both sides). *)
  Sim.Bgp_wire.start h.Neighbor_host.pair;
  Platform.run platform ~seconds:15.;
  checkb "neighbor back up" true (Neighbor_host.is_established h);
  checki "full table restored" before (Toolkit.route_count kit ~pop:"pop01")

let test_three_pop_propagation () =
  (* An announcement made at one PoP reaches neighbors at every PoP via the
     backbone mesh, and the export-control tag for a remote neighbor means
     the same neighbor from any PoP (global export ids, §4.4). *)
  let platform = Platform.create () in
  let engine = Platform.engine platform in
  let mk name = Platform.add_pop platform ~name ~site:Pop.Ixp () in
  let pa = mk "pA" and pb = mk "pB" and pc = mk "pC" in
  let na = Pop.add_transit pa ~asn:(asn 100) in
  let nb = Pop.add_transit pb ~asn:(asn 200) in
  let nc = Pop.add_transit pc ~asn:(asn 300) in
  (* Each neighbor announces a route so remote aliases form at every PoP. *)
  Neighbor_host.announce na
    [ (pfx "192.168.1.0/24", Aspath.of_asns [ asn 100 ]) ];
  Neighbor_host.announce nb
    [ (pfx "192.168.2.0/24", Aspath.of_asns [ asn 200 ]) ];
  Neighbor_host.announce nc
    [ (pfx "192.168.3.0/24", Aspath.of_asns [ asn 300 ]) ];
  Platform.run platform ~seconds:5.;
  Platform.connect_backbone platform;
  Platform.run platform ~seconds:10.;
  let grant = submit platform "threepop" in
  let kit = Toolkit.create ~engine ~grant in
  ignore (Toolkit.open_tunnel kit pa);
  Toolkit.start_session kit ~pop:"pA";
  Platform.run platform ~seconds:10.;
  let prefix = List.hd grant.Vbgp.Control_enforcer.prefixes in
  Toolkit.announce kit prefix;
  Platform.run platform ~seconds:10.;
  checkb "local neighbor heard" true (Neighbor_host.heard_route na prefix <> None);
  checkb "remote neighbor B heard" true
    (Neighbor_host.heard_route nb prefix <> None);
  checkb "remote neighbor C heard" true
    (Neighbor_host.heard_route nc prefix <> None);
  (* Blacklist exactly the neighbor at C, by its global export id, tagged
     from A. *)
  let id_c =
    Vbgp.Router.export_id (Pop.router pc)
      ~neighbor_id:(Neighbor_host.neighbor_id nc)
  in
  Toolkit.announce kit ~block:[ id_c ] prefix;
  Platform.run platform ~seconds:10.;
  checkb "A still announced" true (Neighbor_host.heard_route na prefix <> None);
  checkb "B still announced" true (Neighbor_host.heard_route nb prefix <> None);
  checkb "C withdrawn by global tag" true
    (Neighbor_host.heard_route nc prefix = None);
  (* The alias at A for C's neighbor shares C's export id — the §4.4
     invariant that makes the tags location-independent. *)
  let alias_ids =
    List.filter_map
      (fun ns ->
        if Vbgp.Neighbor.is_alias ns.Vbgp.Router.info then
          Some ns.Vbgp.Router.export_id
        else None)
      (Vbgp.Router.neighbor_states (Pop.router pa))
  in
  checkb "alias export ids include C's neighbor" true
    (List.mem id_c alias_ids)

let () =
  Alcotest.run "integration"
    [
      ( "platform",
        [
          Alcotest.test_case "full visibility via add-path" `Quick
            test_full_visibility;
          Alcotest.test_case "announcement reaches all neighbors" `Quick
            test_announcement_reaches_all_neighbors;
          Alcotest.test_case "parallel experiment isolation" `Quick
            test_parallel_experiments_isolation;
          Alcotest.test_case "data plane end to end" `Quick
            test_data_plane_end_to_end;
          Alcotest.test_case "two-pop backbone" `Quick test_two_pop_backbone;
          Alcotest.test_case "session loss withdraws" `Quick
            test_session_loss_withdraws_routes;
          Alcotest.test_case "neighbor flap" `Quick test_neighbor_flap;
          Alcotest.test_case "neighbor flap recovery" `Quick
            test_neighbor_flap_recovery;
          Alcotest.test_case "misbehaving experiment isolation" `Quick
            test_misbehaving_experiment_isolation;
          Alcotest.test_case "three-pop propagation" `Quick
            test_three_pop_propagation;
        ] );
    ]
