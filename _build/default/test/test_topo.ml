(* Tests for the synthetic Internet: AS graph generation, Gao-Rexford
   policy, valley-free propagation, churn workloads, and the PeeringDB
   census. *)

open Netcore
open Bgp
open Topo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let asn = Asn.of_int
let pfx = Prefix.of_string_exn

(* A small hand-built topology with known valley-free answers:

        T1 ---- T2          (tier-1 peers)
        |        |
        M1      M2          (mid-tier; M1 customer of T1, M2 of T2)
        |  \   /
        S1   S2             (stubs; S1 under M1; S2 under M1 and M2)

   plus a lateral peering M1 -- M2. *)
let build_graph () =
  let g = As_graph.create () in
  let add a kind tier = As_graph.add_node g ~asn:(asn a) ~kind ~tier in
  add 1 As_graph.Transit 1;
  add 2 As_graph.Transit 1;
  add 11 As_graph.Transit 2;
  add 12 As_graph.Transit 2;
  add 101 As_graph.Access_isp 3;
  add 102 As_graph.Content 3;
  As_graph.add_peering g (asn 1) (asn 2);
  As_graph.add_customer g ~provider:(asn 1) ~customer:(asn 11);
  As_graph.add_customer g ~provider:(asn 2) ~customer:(asn 12);
  As_graph.add_customer g ~provider:(asn 11) ~customer:(asn 101);
  As_graph.add_customer g ~provider:(asn 11) ~customer:(asn 102);
  As_graph.add_customer g ~provider:(asn 12) ~customer:(asn 102);
  As_graph.add_peering g (asn 11) (asn 12);
  g

(* -- as_graph -------------------------------------------------------------------- *)

let test_graph_structure () =
  let g = build_graph () in
  checki "nodes" 6 (As_graph.node_count g);
  checkb "provider edge" true
    (List.mem (asn 1) (As_graph.providers g (asn 11)));
  checkb "customer edge" true
    (List.mem (asn 11) (As_graph.customers g (asn 1)));
  checkb "peer edge symmetric" true
    (List.mem (asn 12) (As_graph.peers g (asn 11))
    && List.mem (asn 11) (As_graph.peers g (asn 12)))

let test_graph_duplicate_edges () =
  let g = build_graph () in
  As_graph.add_peering g (asn 11) (asn 12);
  As_graph.add_customer g ~provider:(asn 1) ~customer:(asn 11);
  checki "peering not duplicated" 1
    (List.length
       (List.filter (Asn.equal (asn 12)) (As_graph.peers g (asn 11))));
  checki "customer not duplicated" 1
    (List.length
       (List.filter (Asn.equal (asn 11)) (As_graph.customers g (asn 1))))

let test_customer_cone () =
  let g = build_graph () in
  let cone = As_graph.customer_cone g (asn 1) in
  checki "T1 cone size" 4 (List.length cone);
  checkb "contains S2 transitively" true (List.mem (asn 102) cone);
  checkb "excludes T2" false (List.mem (asn 2) cone);
  checki "stub cone is itself" 1 (List.length (As_graph.customer_cone g (asn 101)))

let test_generate_invariants () =
  let params = { As_graph.default_gen with tier1 = 3; transit = 10; stub = 50 } in
  let g = As_graph.generate ~params () in
  checki "node count" 63 (As_graph.node_count g);
  (* Every non-tier-1 AS has at least one provider. *)
  List.iter
    (fun a ->
      match As_graph.node g a with
      | Some n when n.As_graph.tier > 1 ->
          checkb "has provider" true (As_graph.providers g a <> [])
      | _ -> ())
    (As_graph.asns g);
  (* Tier-1s form a full peer mesh. *)
  List.iter
    (fun a ->
      match As_graph.node g a with
      | Some n when n.As_graph.tier = 1 ->
          checki "tier1 peers" 2
            (List.length
               (List.filter
                  (fun p ->
                    match As_graph.node g p with
                    | Some pn -> pn.As_graph.tier = 1
                    | None -> false)
                  (As_graph.peers g a)))
      | _ -> ())
    (As_graph.asns g)

let test_generate_deterministic () =
  let g1 = As_graph.generate () in
  let g2 = As_graph.generate () in
  checki "same node count" (As_graph.node_count g1) (As_graph.node_count g2);
  checki "same edge count" (As_graph.edge_count g1) (As_graph.edge_count g2)

(* -- policy ----------------------------------------------------------------------- *)

let test_policy_preference () =
  checkb "customer over peer" true
    (Policy.prefer (Policy.From_customer, 5) (Policy.From_peer, 1) < 0);
  checkb "peer over provider" true
    (Policy.prefer (Policy.From_peer, 5) (Policy.From_provider, 1) < 0);
  checkb "shorter within class" true
    (Policy.prefer (Policy.From_peer, 1) (Policy.From_peer, 2) < 0);
  checki "local pref mapping" 300 (Policy.local_pref Policy.From_customer)

let test_policy_export () =
  checkb "customer routes exported to peers" true
    (Policy.exports_to_peers_and_providers Policy.From_customer);
  checkb "peer routes not exported to peers" false
    (Policy.exports_to_peers_and_providers Policy.From_peer);
  checkb "provider routes not exported to providers" false
    (Policy.exports_to_peers_and_providers Policy.From_provider);
  checkb "everything to customers" true
    (Policy.exports_to_customers Policy.From_provider)

(* -- propagation ------------------------------------------------------------------- *)

let test_propagation_reaches_all () =
  let g = build_graph () in
  let p = Internet.propagate g ~origin:(asn 101) in
  checki "everyone reaches a stub's prefix" 6 (Internet.reach_count p)

let test_propagation_paths () =
  let g = build_graph () in
  let p = Internet.propagate g ~origin:(asn 101) in
  (* M1 is S1's provider: path M1, S1. *)
  checkb "direct provider path" true
    (Internet.path p (asn 11) = Some [ asn 11; asn 101 ]);
  (* M2 reaches S1 via its peer M1 (valley-free: peer of customer route),
     not via T2-T1 (longer, provider route). *)
  checkb "peer path preferred" true
    (Internet.path p (asn 12) = Some [ asn 12; asn 11; asn 101 ]);
  (* S2 reaches S1 via its provider M1. *)
  checkb "sibling via shared provider" true
    (Internet.path p (asn 102) = Some [ asn 102; asn 11; asn 101 ])

let test_propagation_valley_free () =
  (* Remove the M1-M2 peering and the T1-T2 peering: then M2 must NOT be
     able to reach S1 via M1 (that would be a valley through a peer), and
     with no tier-1 peering there is no path at all for T2's side. *)
  let g = As_graph.create () in
  let add a = As_graph.add_node g ~asn:(asn a) ~kind:As_graph.Transit ~tier:1 in
  List.iter add [ 1; 2; 11; 12; 101 ];
  As_graph.add_customer g ~provider:(asn 1) ~customer:(asn 11);
  As_graph.add_customer g ~provider:(asn 2) ~customer:(asn 12);
  As_graph.add_customer g ~provider:(asn 11) ~customer:(asn 101);
  (* Lateral peering at the bottom only. *)
  As_graph.add_peering g (asn 11) (asn 12);
  let p = Internet.propagate g ~origin:(asn 101) in
  (* M2 hears it from its peer M1 (customer route of M1: exportable). *)
  checkb "peer hears customer route" true (Internet.has_route p (asn 12));
  (* But M2 must not export a peer-learned route to its provider T2. *)
  checkb "no valley through peer" false (Internet.has_route p (asn 2));
  (* T1 hears it (customer chain). *)
  checkb "provider chain works" true (Internet.has_route p (asn 1))

let test_propagation_scope () =
  let g = build_graph () in
  (* S2 announces only to M2: M1 must not hear it directly; it can still
     learn the route via... nothing (M2 won't export a customer route to a
     peer? it will! customer routes go to peers). *)
  let p =
    Internet.propagate g ~origin:(asn 102) ~scope:(Internet.Only [ asn 12 ])
  in
  checkb "M2 hears" true (Internet.has_route p (asn 12));
  (* M1 hears via the M1-M2 peering (customer route of M2). *)
  checkb "M1 hears via peering" true (Internet.has_route p (asn 11));
  (* S1 hears from its provider M1. *)
  checkb "S1 hears downstream" true (Internet.has_route p (asn 101));
  (* Path of T1 must go through T2 (not directly down to M1's announcement,
     which never happened). *)
  match Internet.path p (asn 1) with
  | Some path -> checkb "T1 via T2 or M1" true (List.mem (asn 2) path || List.mem (asn 11) path)
  | None -> Alcotest.fail "T1 unreachable"

let test_propagation_poisoning () =
  let g = build_graph () in
  let p = Internet.propagate g ~origin:(asn 101) ~blocked:[ asn 11 ] in
  (* M1 is poisoned: S1 becomes unreachable for everyone (M1 is its only
     provider). *)
  checki "only the origin retains a route" 1 (Internet.reach_count p)

let test_internet_routes_at () =
  let g = build_graph () in
  let origins = [ (pfx "192.168.0.0/24", asn 101); (pfx "192.168.1.0/24", asn 102) ] in
  let internet = Internet.create g ~origins in
  let routes = Internet.routes_at internet (asn 12) in
  checki "M2 has both prefixes" 2 (List.length routes);
  List.iter
    (fun (_, path) ->
      checkb "path starts at M2" true (Aspath.first path = Some (asn 12)))
    routes

let test_assign_prefixes () =
  let assigned =
    Internet.assign_prefixes ~base:(pfx "10.0.0.0/16") [ asn 1; asn 2; asn 3 ]
  in
  checki "three prefixes" 3 (List.length assigned);
  let ps = List.map fst assigned in
  checki "distinct" 3 (List.length (List.sort_uniq Prefix.compare ps))

(* -- looking glass / filter troubleshooting (Appendix A) --------------------------- *)

let test_propagation_filters () =
  let g = build_graph () in
  (* Filter the T1 -> T2 peering edge: T2 must fall back to its other
     sources or lose the route. Filtering M1 -> T1 cuts the whole provider
     chain. *)
  let p =
    Internet.propagate g ~origin:(asn 101) ~filters:[ (asn 11, asn 1) ]
  in
  checkb "T1 cut off by filter" false (Internet.has_route p (asn 1));
  (* M2 still hears laterally from its peer M1... *)
  checkb "M2 hears via peering" true (Internet.has_route p (asn 12));
  (* ...but cannot export a peer-learned route upward, so T2 loses it too:
     one bad filter partitions the whole tier-1 side (Appendix A's
     motivating pain). *)
  checkb "T2 collateral damage" false (Internet.has_route p (asn 2))

let test_looking_glass_query () =
  let g = build_graph () in
  let lg = Looking_glass.create ~coverage:1.0 g ~origin:(asn 101) in
  checki "all ASes host LGs at full coverage" 6 (Looking_glass.host_count lg);
  (match Looking_glass.show_route lg ~at:(asn 12) with
  | Looking_glass.Route path ->
      checkb "path ends at origin" true (Aspath.origin path = Some (asn 101))
  | _ -> Alcotest.fail "expected a route");
  let none = Looking_glass.create ~coverage:0.0 g ~origin:(asn 101) in
  checkb "no LG, no answer" true
    (Looking_glass.show_route none ~at:(asn 12) = Looking_glass.No_looking_glass)

let test_filter_localization () =
  let g = build_graph () in
  (* Break M1 -> T1 (T1 never hears the customer route). With full LG
     coverage the troubleshooter must implicate exactly that edge. *)
  let filters = [ (asn 11, asn 1) ] in
  let lg = Looking_glass.create ~coverage:1.0 ~filters g ~origin:(asn 101) in
  let suspects = Looking_glass.localize lg ~origin:(asn 101) in
  checkb "true filter among suspects" true
    (Looking_glass.covers suspects ~filters);
  (match suspects with
  | top :: _ ->
      checkb "top suspect is the filtered edge" true
        (Asn.equal top.Looking_glass.from_as (asn 11)
        && Asn.equal top.Looking_glass.to_as (asn 1))
  | [] -> Alcotest.fail "no suspects");
  (* With partial coverage the candidate set is wider but still covers the
     truth whenever a downstream LG observed the outage. *)
  let lg =
    Looking_glass.create ~coverage:0.5 ~seed:3 ~filters g ~origin:(asn 101)
  in
  let suspects = Looking_glass.localize lg ~origin:(asn 101) in
  let t1_observed =
    Looking_glass.show_route lg ~at:(asn 1) <> Looking_glass.No_looking_glass
  in
  if t1_observed then
    checkb "covered under partial coverage" true
      (Looking_glass.covers suspects ~filters)

(* -- updates ---------------------------------------------------------------------- *)

let test_updates_generation () =
  let prefixes = List.init 10 (fun i -> pfx (Printf.sprintf "10.%d.0.0/16" i)) in
  let params = { Updates.default_params with rate = 50.; duration = 20. } in
  let events = Updates.generate ~params ~prefixes ~origin_asn:(asn 65000) () in
  checkb "roughly rate*duration events" true
    (let n = List.length events in
     n > 500 && n < 2000);
  checkb "times within duration" true
    (List.for_all (fun e -> e.Updates.time >= 0. && e.Updates.time < 21.) events);
  checkb "monotone times" true
    (let rec mono = function
       | a :: (b :: _ as rest) -> a.Updates.time <= b.Updates.time && mono rest
       | _ -> true
     in
     mono events);
  (* Deterministic per seed. *)
  let events' = Updates.generate ~params ~prefixes ~origin_asn:(asn 65000) () in
  checki "deterministic" (List.length events) (List.length events')

let test_updates_to_update () =
  let prefixes = [ pfx "10.0.0.0/16" ] in
  let events =
    Updates.generate
      ~params:{ Updates.default_params with withdraw_fraction = 0.; duration = 1. }
      ~prefixes ~origin_asn:(asn 65000) ()
  in
  let u = Updates.to_update ~next_hop:(Ipv4.of_string_exn "1.1.1.1") (List.hd events) in
  checki "announce nlri" 1 (List.length u.Msg.announced);
  checkb "origin asn at end" true
    (match Attr.as_path u.Msg.attrs with
    | Some path -> Aspath.origin path = Some (asn 65000)
    | None -> false)

let test_rate_stats () =
  (* A uniform 10/s trace: average 10, p99 near 10. *)
  let events =
    List.init 1000 (fun i ->
        {
          Updates.time = float_of_int i /. 10.;
          peer_index = 0;
          prefix = pfx "10.0.0.0/16";
          kind = Updates.Announce;
          as_path = Aspath.of_asns [ asn 1 ];
        })
  in
  let avg, p99 = Updates.rate_stats events in
  checkb "average near 10" true (avg > 8. && avg < 12.);
  checkb "p99 near 10" true (p99 >= 9. && p99 <= 11.)

(* -- peeringdb ----------------------------------------------------------------------- *)

let test_peeringdb_footprint () =
  let db = Peeringdb.generate () in
  let rows = Peeringdb.by_ixp db in
  checki "four IXPs" 4 (List.length rows);
  List.iter
    (fun (ixp, total, bilateral) ->
      let expect_total, expect_bi =
        match
          List.find_opt (fun (n, _, _) -> n = ixp) Peeringdb.paper_footprint
        with
        | Some (_, t, b) -> (t, b)
        | None -> (0, 0)
      in
      checki (ixp ^ " total") expect_total total;
      checki (ixp ^ " bilateral") expect_bi bilateral)
    rows

let test_peeringdb_census () =
  let db = Peeringdb.generate () in
  let census = Peeringdb.type_census db in
  let total_fraction = List.fold_left (fun acc (_, _, f) -> acc +. f) 0. census in
  checkb "fractions sum to 1" true (abs_float (total_fraction -. 1.0) < 1e-9);
  (* Transit should be the plurality, as in the paper (33%). *)
  (match census with
  | (kind, _, frac) :: _ ->
      checkb "transit plurality" true (kind = As_graph.Transit);
      checkb "transit around a third" true (frac > 0.2 && frac < 0.45)
  | [] -> Alcotest.fail "empty census");
  checkb "unique peers bounded" true
    (List.length (Peeringdb.unique_peers db) <= 923)

(* Property: every path produced by propagation over a random topology is
   valley-free — once the route class worsens (customer -> peer ->
   provider, read from origin outward), it never improves again. Walking a
   path from AS x to the origin, x's class tells how x learned it; the
   classes along the path toward the origin must be monotonically
   non-increasing in rank. *)
let prop_valley_free =
  QCheck.Test.make ~name:"propagation paths are valley-free" ~count:25
    (QCheck.int_bound 1000)
    (fun seed ->
      let g =
        As_graph.generate
          ~params:{ As_graph.default_gen with transit = 10; stub = 40; seed }
          ()
      in
      let stubs =
        List.filter
          (fun a ->
            match As_graph.node g a with
            | Some n -> n.As_graph.tier = 3
            | None -> false)
          (As_graph.asns g)
        |> List.sort Asn.compare
      in
      match stubs with
      | [] -> true
      | origin :: _ ->
          let p = Internet.propagate g ~origin in
          List.for_all
            (fun a ->
              match Internet.path p a with
              | None -> true
              | Some path ->
                  (* Ranks along the path from [a] toward the origin must
                     not increase (an increase = a valley). *)
                  let ranks =
                    List.filter_map
                      (fun hop ->
                        Option.map
                          (fun r -> Policy.class_rank r.Internet.cls)
                          (Internet.route p hop))
                      path
                  in
                  let rec non_increasing = function
                    | x :: (y :: _ as rest) ->
                        x >= y && non_increasing rest
                    | _ -> true
                  in
                  non_increasing ranks)
            (As_graph.asns g))

let topo_props = List.map QCheck_alcotest.to_alcotest [ prop_valley_free ]

let () =
  Alcotest.run "topo"
    [
      ( "as_graph",
        [
          Alcotest.test_case "structure" `Quick test_graph_structure;
          Alcotest.test_case "duplicate edges" `Quick test_graph_duplicate_edges;
          Alcotest.test_case "customer cone" `Quick test_customer_cone;
          Alcotest.test_case "generate invariants" `Quick test_generate_invariants;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
        ] );
      ( "policy",
        [
          Alcotest.test_case "preference" `Quick test_policy_preference;
          Alcotest.test_case "export rules" `Quick test_policy_export;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "reaches all" `Quick test_propagation_reaches_all;
          Alcotest.test_case "paths" `Quick test_propagation_paths;
          Alcotest.test_case "valley-free" `Quick test_propagation_valley_free;
          Alcotest.test_case "selective scope" `Quick test_propagation_scope;
          Alcotest.test_case "poisoning" `Quick test_propagation_poisoning;
          Alcotest.test_case "routes_at" `Quick test_internet_routes_at;
          Alcotest.test_case "assign prefixes" `Quick test_assign_prefixes;
        ] );
      ( "looking_glass",
        [
          Alcotest.test_case "propagation filters" `Quick
            test_propagation_filters;
          Alcotest.test_case "query" `Quick test_looking_glass_query;
          Alcotest.test_case "filter localization" `Quick
            test_filter_localization;
        ] );
      ( "updates",
        [
          Alcotest.test_case "generation" `Quick test_updates_generation;
          Alcotest.test_case "to_update" `Quick test_updates_to_update;
          Alcotest.test_case "rate stats" `Quick test_rate_stats;
        ] );
      ( "peeringdb",
        [
          Alcotest.test_case "footprint" `Quick test_peeringdb_footprint;
          Alcotest.test_case "census" `Quick test_peeringdb_census;
        ] );
      ("properties", topo_props);
    ]
