test/test_peering.mli:
