test/test_integration.ml: Alcotest Approval Asn Aspath Attr Bgp Ipv4 Ipv4_packet List Mac Neighbor_host Netcore Option Peering Platform Pop Prefix Rib Session Sim Toolkit Topo Vbgp
