test/test_vbgp.mli:
