test/test_rib.ml: Alcotest Asn Aspath Attr Bgp Hashtbl Int32 Ipv4 List Netcore Prefix Printf QCheck QCheck_alcotest Rib
