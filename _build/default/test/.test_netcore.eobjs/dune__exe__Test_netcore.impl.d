test/test_netcore.ml: Alcotest Arp Array Bytes Checksum Eth Icmp Int32 Ipv4 Ipv4_packet Ipv6 List Mac Netcore Prefix Prefix_v6 Ptrie QCheck QCheck_alcotest Result Udp Wire
