test/test_sim.ml: Alcotest Array Engine Eth Flow Lan Link List Mac Netcore QCheck QCheck_alcotest Sim String Tcp Trace
