test/test_topo.ml: Alcotest As_graph Asn Aspath Attr Bgp Internet Ipv4 List Looking_glass Msg Netcore Option Peeringdb Policy Prefix Printf QCheck QCheck_alcotest Topo Updates
