# Tier-1 verification: build, formatting, tests.

.PHONY: all build fmt test bench check

all: build

build:
	dune build

# Formatting is enforced for dune files (ocamlformat is not a dependency
# of this repo; see dune-project's (formatting) stanza).
fmt:
	dune build @fmt

test:
	dune runtest

bench:
	dune exec bench/main.exe

check: fmt build test
