# Tier-1 verification: build, formatting, tests.

.PHONY: all build fmt test bench bench-json bench-smoke check

all: build

build:
	dune build

# Formatting is enforced for dune files (ocamlformat is not a dependency
# of this repo; see dune-project's (formatting) stanza).
fmt:
	dune build @fmt

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable headline metrics (micro ns/op, fig6a memory bytes).
bench-json:
	dune exec bench/main.exe -- --json bench.json micro fig6a

# Fast smoke run of the microbenchmarks (used by `make check`).
bench-smoke:
	dune exec bench/main.exe -- --smoke micro

check: fmt build test bench-smoke
