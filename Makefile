# Tier-1 verification: build, formatting, tests.

.PHONY: all build fmt test bench bench-json bench-smoke chaos check

all: build

build:
	dune build

# Formatting is enforced for dune files (ocamlformat is not a dependency
# of this repo; see dune-project's (formatting) stanza).
fmt:
	dune build @fmt

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable headline metrics (micro ns/op, fig6a memory bytes,
# flap withdrawal-storm counts).
bench-json:
	dune exec bench/main.exe -- --json bench.json micro fig6a flap

# Fast smoke run of the microbenchmarks (used by `make check`).
bench-smoke:
	dune exec bench/main.exe -- --smoke micro flap

# Fault-injection convergence suite (also part of `dune runtest`).
chaos:
	dune exec test/test_chaos.exe

check: fmt build test chaos bench-smoke
