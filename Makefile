# Tier-1 verification: build, formatting, tests.

.PHONY: all build fmt test bench bench-json bench-smoke bench-diff chaos par par-ingest export-par drill check fullscale

all: build

build:
	dune build

# Formatting is enforced for dune files (ocamlformat is not a dependency
# of this repo; see dune-project's (formatting) stanza).
fmt:
	dune build @fmt

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable headline metrics (micro ns/op, fig6a memory bytes,
# flap withdrawal-storm counts, burst/intern sharing & packing ratios).
bench-json:
	dune exec bench/main.exe -- --json bench.json micro fig6a flap burst intern fwd fwd-par ingest-par export-par fullscale drill

# Full-table-scale control plane: 500k+ routes over 100 neighbors through
# the batched-ingest pipeline, then a staged churn replay (withdraw storm,
# peer flaps, fresh wave). Reports RIB memory, bytes/route, updates/sec
# and convergence time.
fullscale:
	dune exec bench/main.exe -- fullscale

# Fast smoke run of the microbenchmarks (used by `make check`); writes
# bench-smoke.json for the regression gate below.
bench-smoke:
	dune exec bench/main.exe -- --smoke --json bench-smoke.json micro flap burst intern fwd fwd-par ingest-par export-par fullscale drill

# Regression gate: compare the smoke run against the committed baseline.
# Fails if any count/bytes/ratio headline metric moves >10% in the wrong
# direction (timing metrics are reported but not gated).
bench-diff: bench-smoke
	dune exec tools/bench_diff.exe -- bench/baseline-smoke.json bench-smoke.json

# Fault-injection convergence suite (also part of `dune runtest`).
chaos:
	dune exec test/test_chaos.exe

# Multicore data-plane suite: arena stress across domains plus the
# sharded-vs-sequential differential (also part of `dune runtest`).
par:
	dune exec test/test_shard.exe

# Parallel ingest lane: the 4-lane-vs-sequential fingerprint differential
# (incl. graceful restart and mid-churn session kills) plus partition and
# validation checks (also part of `dune runtest`).
par-ingest:
	dune exec test/test_par_ingest.exe

# Parallel export lane: the 4-lane-vs-sequential differential on Adj-RIB-Out
# fingerprints, exact counters and per-neighbor wire-byte transcripts (incl.
# graceful restart and mid-churn kills), the encode-once wire-cache
# accounting, and the chunked regression (also part of `dune runtest`).
export-par:
	dune exec test/test_export_par.exe

# Failover drills: PoP kill/re-home/restart, degraded mode, two-phase
# zero-residual guarantees (also part of `dune runtest`).
drill:
	dune exec test/test_drill.exe

check: fmt build test chaos par par-ingest export-par drill bench-diff
